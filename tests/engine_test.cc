#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/session.h"

namespace olxp::engine {
namespace {

EngineProfile NoRowOlap(EngineProfile p) {
  p.olap_row_fraction = 0.0;  // deterministic routing in tests
  return p;
}

TEST(Profile, PresetsAndLookup) {
  EXPECT_EQ(EngineProfile::MemSqlLike().architecture,
            StoreArchitecture::kUnified);
  EXPECT_EQ(EngineProfile::TiDbLike().architecture,
            StoreArchitecture::kSeparated);
  EXPECT_EQ(EngineProfile::TiDbLike().isolation,
            txn::IsolationLevel::kSnapshotIsolation);
  EXPECT_EQ(EngineProfile::MemSqlLike().isolation,
            txn::IsolationLevel::kReadCommitted);
  EXPECT_FALSE(EngineProfile::MemSqlLike().enforce_foreign_keys);
  ASSERT_TRUE(EngineProfile::ByName("tidb").ok());
  ASSERT_TRUE(EngineProfile::ByName("MEMSQL-LIKE").ok());
  ASSERT_TRUE(EngineProfile::ByName("oceanbase").ok());
  EXPECT_FALSE(EngineProfile::ByName("oracle").ok());
}

TEST(ClusterModel, ScalingFactors) {
  ClusterModel m;
  m.commit_scale_per_doubling = 0.5;
  m.read_scale_per_doubling = 0.25;
  m.num_nodes = 4;
  EXPECT_DOUBLE_EQ(m.CommitFactor(), 1.0);
  m.num_nodes = 8;
  EXPECT_DOUBLE_EQ(m.CommitFactor(), 1.5);
  EXPECT_DOUBLE_EQ(m.ReadFactor(), 1.25);
  m.num_nodes = 16;
  EXPECT_DOUBLE_EQ(m.CommitFactor(), 2.0);
}

TEST(Session, RoutingRules) {
  Database db(NoRowOlap(EngineProfile::TiDbLike()));
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (1, 2), (3, 4)").ok());
  db.WaitReplicaCaughtUp();

  // Point read stays on the row store even standalone.
  ASSERT_TRUE(s->Execute("SELECT b FROM t WHERE a = 1").ok());
  EXPECT_EQ(s->last_route(), RoutedStore::kRowStore);
  // Analytical standalone SELECT routes to the replica.
  ASSERT_TRUE(s->Execute("SELECT SUM(b) FROM t").ok());
  EXPECT_EQ(s->last_route(), RoutedStore::kColumnStore);
  // Inside a transaction everything pins to the row store.
  ASSERT_TRUE(s->Begin().ok());
  ASSERT_TRUE(s->Execute("SELECT SUM(b) FROM t").ok());
  EXPECT_EQ(s->last_route(), RoutedStore::kRowStore);
  ASSERT_TRUE(s->Commit().ok());
  // Writes always row store.
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (5, 6)").ok());
  EXPECT_EQ(s->last_route(), RoutedStore::kRowStore);
}

TEST(Session, PreparedCacheEvictsLeastRecentlyUsed) {
  EngineProfile p = EngineProfile::MemSqlLike();
  p.prepared_statement_cache_capacity = 8;
  Database db(p);
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (1, 2)").ok());

  // Ad-hoc SQL with inlined literals: without the LRU bound the cache
  // grows by one entry per distinct text for the session's lifetime.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        s->Execute("SELECT b FROM t WHERE a = " + std::to_string(i)).ok());
  }
  EXPECT_LE(s->prepared_cache_size(), 8u);

  // A hot statement re-executed between fillers stays cached (MRU) and the
  // cache stays bounded.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(s->Execute("SELECT COUNT(*) FROM t").ok());
    ASSERT_TRUE(
        s->Execute("SELECT b FROM t WHERE a = " + std::to_string(1000 + i))
            .ok());
  }
  EXPECT_LE(s->prepared_cache_size(), 8u);
  auto rs = s->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1);
}

TEST(Session, PreparedCacheUnboundedWhenCapacityZero) {
  EngineProfile p = EngineProfile::MemSqlLike();
  p.prepared_statement_cache_capacity = 0;
  Database db(p);
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY)").ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        s->Execute("SELECT a FROM t WHERE a = " + std::to_string(i)).ok());
  }
  EXPECT_GE(s->prepared_cache_size(), 40u);
}

TEST(Session, PreparedStatementsRebindAfterDdl) {
  // Regression: a plan prepared before CREATE INDEX stayed cached with its
  // stale PlanShape, so the router kept costing the statement as a full
  // scan (and the executor kept the full-scan access path) forever. The
  // schema-version stamp must force a recompile on the next cache hit.
  EngineProfile p = NoRowOlap(EngineProfile::TiDbLike());
  p.cost_based_routing = true;
  Database db(p);
  db.set_exec_threads(1);  // serial cost crossover, deterministic routing
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(
      s->Execute("CREATE TABLE d (k INT PRIMARY KEY, tag INT, v INT)").ok());
  for (int k = 0; k < 2000; ++k) {
    ASSERT_TRUE(s->Execute("INSERT INTO d VALUES (?, ?, ?)",
                           {Value::Int(k), Value::Int(k % 100),
                            Value::Int(k)})
                    .ok());
  }
  db.WaitReplicaCaughtUp();

  // Warm the cache: without an index this selective filter is a full scan,
  // so the router sends it to the replica.
  const std::string q = "SELECT SUM(v) FROM d WHERE tag = 42";
  ASSERT_TRUE(s->Execute(q).ok());
  EXPECT_EQ(s->last_route(), RoutedStore::kColumnStore);
  const size_t cached = s->prepared_cache_size();

  ASSERT_TRUE(s->Execute("CREATE INDEX d_tag ON d (tag)").ok());

  // Same SQL text: the cache hit must notice the schema-version bump,
  // recompile against the index, and route the now-indexed shape to the
  // row store (stale shape would have kept it on the replica).
  auto rs = s->Execute(q);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(s->last_route(), RoutedStore::kRowStore);
  int64_t expect = 0;
  for (int k = 42; k < 2000; k += 100) expect += k;
  EXPECT_EQ(rs->rows[0][0].AsInt(), expect);
  // Re-prepared in place, not duplicated.
  EXPECT_EQ(s->prepared_cache_size(), cached + 1);  // + the CREATE INDEX
}

TEST(Session, UnifiedArchitectureNeverRoutesToReplica) {
  Database db(EngineProfile::MemSqlLike());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (1, 2)").ok());
  ASSERT_TRUE(s->Execute("SELECT SUM(b) FROM t").ok());
  EXPECT_EQ(s->last_route(), RoutedStore::kRowStore);
}

TEST(Session, ReplicaFreshnessLagIsObservable) {
  EngineProfile p = NoRowOlap(EngineProfile::TiDbLike());
  p.replication_lag_micros = 300000;  // 300 ms
  Database db(p);
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (1, 10)").ok());
  db.WaitReplicaCaughtUp();
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (2, 20)").ok());

  // Replica still serves the pre-insert snapshot.
  auto stale = s->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(s->last_route(), RoutedStore::kColumnStore);
  EXPECT_EQ(stale->rows[0][0].AsInt(), 1);
  // The row store (inside a txn) sees fresh data.
  ASSERT_TRUE(s->Begin().ok());
  auto fresh = s->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows[0][0].AsInt(), 2);
  ASSERT_TRUE(s->Commit().ok());
  // After catch-up the replica converges.
  db.WaitReplicaCaughtUp();
  auto conv = s->Execute("SELECT COUNT(*) FROM t");
  EXPECT_EQ(conv->rows[0][0].AsInt(), 2);
}

TEST(Session, ForeignKeyEnforcementPerProfile) {
  const char* ddl_parent = "CREATE TABLE p (id INT PRIMARY KEY)";
  const char* ddl_child =
      "CREATE TABLE c (id INT PRIMARY KEY, pid INT, "
      "FOREIGN KEY (pid) REFERENCES p (id))";
  {
    Database db(EngineProfile::TiDbLike());  // enforces FKs
    auto s = db.CreateSession();
    s->set_charging_enabled(false);
    ASSERT_TRUE(s->Execute(ddl_parent).ok());
    ASSERT_TRUE(s->Execute(ddl_child).ok());
    ASSERT_TRUE(s->Execute("INSERT INTO p VALUES (1)").ok());
    EXPECT_TRUE(s->Execute("INSERT INTO c VALUES (10, 1)").ok());
    auto bad = s->Execute("INSERT INTO c VALUES (11, 99)");
    EXPECT_FALSE(bad.ok());
    // NULL FK passes.
    EXPECT_TRUE(s->Execute("INSERT INTO c VALUES (12, NULL)").ok());
  }
  {
    Database db(EngineProfile::MemSqlLike());  // FKs are metadata only
    auto s = db.CreateSession();
    s->set_charging_enabled(false);
    ASSERT_TRUE(s->Execute(ddl_parent).ok());
    ASSERT_TRUE(s->Execute(ddl_child).ok());
    EXPECT_TRUE(s->Execute("INSERT INTO c VALUES (11, 99)").ok());
  }
}

TEST(Session, FailedStatementAbortsTransaction) {
  Database db(EngineProfile::MemSqlLike());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY)").ok());
  ASSERT_TRUE(s->Begin().ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(s->Execute("INSERT INTO t VALUES (1)").ok());  // duplicate
  EXPECT_FALSE(s->InTransaction());  // auto-aborted
  EXPECT_TRUE(s->Rollback().ok());   // idempotent no-op
  auto rs = s->Execute("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs->rows[0][0].AsInt(), 0);  // nothing survived
}

TEST(Session, TransactionControlErrors) {
  Database db(EngineProfile::MemSqlLike());
  auto s = db.CreateSession();
  EXPECT_FALSE(s->Commit().ok());  // no open txn
  ASSERT_TRUE(s->Begin().ok());
  EXPECT_FALSE(s->Begin().ok());  // nested
  EXPECT_TRUE(s->Rollback().ok());
}

TEST(Session, ChargingAccumulatesAndScalesWithCluster) {
  EngineProfile p = EngineProfile::TiDbLike();
  p.olap_row_fraction = 0.0;
  Database db(p);
  auto s = db.CreateSession();
  s->set_charging_enabled(false);  // account but do not sleep
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (?, ?)",
                           {Value::Int(i), Value::Int(i)})
                    .ok());
  }
  int64_t c4 = s->charged_micros();
  EXPECT_GT(c4, 0);

  db.set_cluster_nodes(16);
  auto s2 = db.CreateSession();
  s2->set_charging_enabled(false);
  for (int i = 100; i < 150; ++i) {
    ASSERT_TRUE(s2->Execute("INSERT INTO t VALUES (?, ?)",
                            {Value::Int(i), Value::Int(i)})
                    .ok());
  }
  // Same work on a 16-node cluster must charge measurably more.
  EXPECT_GT(s2->charged_micros(), c4);
}

TEST(Session, PreparedStatementCacheReuse) {
  Database db(EngineProfile::MemSqlLike());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  // Same text many times with different params exercises the cache.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (?, ?)",
                           {Value::Int(i), Value::Int(i * 2)})
                    .ok());
  }
  auto rs = s->Execute("SELECT SUM(b) FROM t");
  EXPECT_EQ(rs->rows[0][0].AsInt(), 9900);
}

TEST(Database, PruneVersionsKeepsLatestVisible) {
  Database db(EngineProfile::MemSqlLike());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO t VALUES (1, 0)").ok());
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(s->Execute("UPDATE t SET b = ? WHERE a = 1",
                           {Value::Int(i)})
                    .ok());
  }
  db.PruneAllVersions(2);
  auto rs = s->Execute("SELECT b FROM t WHERE a = 1");
  EXPECT_EQ(rs->rows[0][0].AsInt(), 20);
}

}  // namespace
}  // namespace olxp::engine
