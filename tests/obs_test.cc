// Observability tests: metrics registry primitives (including their
// concurrency contracts, exercised under TSan in CI), the slow-query ring,
// per-query tracing (EXPLAIN ANALYZE), and the engine-level wiring —
// Database::StatsJson() must surface telemetry from every subsystem after
// a mixed workload, and tracing must never change statement results.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "engine/session.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "obs/slow_query_log.h"
#include "tests/result_strings.h"

namespace olxp {
namespace {

namespace fs = std::filesystem;

// ------------------------------- primitives -------------------------------

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), int64_t{kThreads} * kPerThread);
}

TEST(ObsCounter, SnapshotRacesWithWriters) {
  // Reads while writers are mid-increment: each observed value must be
  // monotone non-decreasing and never above the final total. Run under
  // TSan in CI, this also proves the relaxed-atomics scheme is race-free.
  obs::Counter c;
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 50000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&c] {
      for (int i = 0; i < kPerWriter; ++i) c.Add(1);
    });
  }
  std::thread reader([&] {
    int64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      int64_t v = c.Value();
      EXPECT_GE(v, last);
      EXPECT_LE(v, int64_t{kWriters} * kPerWriter);
      last = v;
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(c.Value(), int64_t{kWriters} * kPerWriter);
}

TEST(ObsRegistry, HandlesAreStableAndSharedByName) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("x.count");
  obs::Counter* b = reg.GetCounter("x.count");
  EXPECT_EQ(a, b);
  a->Add(3);
  reg.GetGauge("x.gauge")->Set(-7);
  reg.GetHistogram("x.lat_us")->Record(150);
  auto snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("x.count"), 3);
  EXPECT_EQ(snap.gauges.at("x.gauge"), -7);
  EXPECT_EQ(snap.histograms.at("x.lat_us").count, 1);
}

TEST(ObsRegistry, ConcurrentLookupAndRecordUnderSnapshot) {
  // Registration, recording and snapshotting race from many threads (the
  // session-open vs dashboard-poll pattern); TSan checks the locking.
  obs::MetricsRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg, t] {
      obs::Counter* c = reg.GetCounter("shared.count");
      obs::Histogram* h =
          reg.GetHistogram("h" + std::to_string(t) + ".lat_us");
      for (int i = 0; i < 2000; ++i) {
        c->Add(1);
        h->Record(i);
        if (i % 500 == 0) reg.Snapshot();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.Snapshot().counters.at("shared.count"), 8000);
}

TEST(ObsRegistry, JsonAndPrometheusRendering) {
  obs::MetricsRegistry reg;
  reg.GetCounter("wal.appends")->Add(2);
  reg.GetGauge("repl.pending_records")->Set(5);
  reg.GetHistogram("session.statement_us")->Record(1000);
  auto snap = reg.Snapshot();
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"wal.appends\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"repl.pending_records\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"session.statement_us\""), std::string::npos);
  const std::string prom = snap.ToPrometheusText();
  EXPECT_NE(prom.find("wal_appends 2"), std::string::npos) << prom;
  EXPECT_NE(prom.find("session_statement_us_count 1"), std::string::npos);
}

TEST(ObsSlowQueryLog, RingEvictsOldestAndKeepsMonotoneSeq) {
  obs::SlowQueryLog log(2);
  for (int i = 1; i <= 3; ++i) {
    obs::SlowQueryEntry e;
    e.sql = "q" + std::to_string(i);
    e.wall_us = i * 10;
    log.Add(std::move(e));
  }
  EXPECT_EQ(log.total_recorded(), 3u);
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].sql, "q2");
  EXPECT_EQ(entries[0].seq, 2u);
  EXPECT_EQ(entries[1].sql, "q3");
  EXPECT_EQ(entries[1].seq, 3u);
}

TEST(ObsSlowQueryLog, ZeroCapacityIsUnbounded) {
  obs::SlowQueryLog log(0);
  for (int i = 0; i < 100; ++i) log.Add({});
  EXPECT_EQ(log.Entries().size(), 100u);
}

// ----------------------------- engine wiring ------------------------------

/// Deterministic separated-architecture profile with durability on (a
/// scratch WAL dir) and a small morsel size so the worker pool engages on
/// test-sized tables: every subsystem has a reason to report.
class ObsEngineTest : public ::testing::Test {
 protected:
  ~ObsEngineTest() override {
    for (const std::string& d : dirs_) {
      std::error_code ec;
      fs::remove_all(d, ec);
    }
  }

  std::string MakeWalDir() {
    std::string tmpl = (fs::temp_directory_path() / "olxp_obs_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* got = mkdtemp(buf.data());
    EXPECT_NE(got, nullptr);
    dirs_.emplace_back(got);
    return dirs_.back();
  }

  engine::EngineProfile Profile() {
    auto p = engine::EngineProfile::TiDbLike();
    p.olap_row_fraction = 0.0;
    p.replication_lag_micros = 0;
    p.cost_based_routing = false;  // deterministic replica routing
    p.durability = storage::DurabilityMode::kGroup;
    p.wal_dir = MakeWalDir();
    p.exec_threads = 2;
    p.morsel_rows = 1024;
    p.vacuum_interval_us = 0;  // passes run synchronously via RunVacuum()
    return p;
  }

  /// CREATE + 3000 inserts + updates + an analytical sweep + a vacuum pass:
  /// touches the WAL, locks, replication, the worker pool and the router.
  void RunMixedWorkload(engine::Database& db, engine::Session& s) {
    ASSERT_TRUE(
        s.Execute("CREATE TABLE m (k INT PRIMARY KEY, v INT, w DOUBLE)").ok());
    for (int i = 0; i < 3000; ++i) {
      ASSERT_TRUE(s.Execute("INSERT INTO m VALUES (?, ?, ?)",
                            {Value::Int(i), Value::Int(i % 50),
                             Value::Double(i * 0.5)})
                      .ok());
    }
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(s.Execute("UPDATE m SET v = ? WHERE k = ?",
                            {Value::Int(-i), Value::Int(i)})
                      .ok());
    }
    db.WaitReplicaCaughtUp();
    auto rs = s.Execute("SELECT COUNT(*), SUM(v) FROM m");
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_TRUE(s.last_vectorized());
    db.RunVacuum();
  }

  std::vector<std::string> dirs_;
};

TEST_F(ObsEngineTest, StatsJsonCoversEverySubsystem) {
  engine::Database db(Profile());
  ASSERT_TRUE(db.recovery_status().ok());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  RunMixedWorkload(db, *s);

  auto snap = db.metrics().Snapshot();
  // One load-bearing counter per subsystem must have moved.
  EXPECT_GT(snap.counters.at("wal.appends"), 0);            // WAL
  EXPECT_GT(snap.counters.at("vacuum.passes"), 0);          // vacuum
  EXPECT_GT(snap.counters.at("repl.records_applied"), 0);   // replicator
  EXPECT_GT(snap.counters.at("lock.acquires"), 0);          // lock manager
  EXPECT_GT(snap.counters.at("exec.pool.runs"), 0);         // worker pool
  EXPECT_GT(snap.counters.at("router.route.column_vectorized"), 0);  // router
  EXPECT_GT(snap.counters.at("exec.morsels_dispatched"), 0);
  EXPECT_GT(snap.counters.at("session.statements"), 0);
  EXPECT_GT(snap.histograms.at("session.statement_us").count, 0);
  EXPECT_GT(snap.histograms.at("wal.fsync_us").count, 0);
  EXPECT_GT(snap.histograms.at("vacuum.pass_us").count, 0);

  // And the JSON document surfaces all of it.
  const std::string json = db.StatsJson();
  for (const char* name :
       {"wal.appends", "vacuum.passes", "repl.records_applied",
        "lock.acquires", "exec.pool.runs", "router.route.column_vectorized",
        "slow_queries", "slow_query_total"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name << "\n" << json;
  }
  EXPECT_FALSE(db.MetricsText().empty());
}

TEST_F(ObsEngineTest, TracingChangesNoResults) {
  engine::Database db(Profile());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  RunMixedWorkload(db, *s);

  const char* queries[] = {
      "SELECT COUNT(*), SUM(v), AVG(w) FROM m",
      "SELECT v, COUNT(*), MAX(w) FROM m GROUP BY v ORDER BY v",
      "SELECT k, v FROM m WHERE v > 25 AND w < 900.0",
      "SELECT k FROM m ORDER BY w DESC LIMIT 7",
      "SELECT COUNT(*) FROM m WHERE k = 17",
      // Zone-refutable pk range: most sealed blocks are skipped outright;
      // tracing (and the skip accounting it surfaces) must not perturb the
      // result.
      "SELECT COUNT(*), SUM(v) FROM m WHERE k < 100",
  };
  for (bool vectorized : {true, false}) {
    db.set_vectorized_execution(vectorized);
    for (const char* sql : queries) {
      SCOPED_TRACE(std::string(sql) +
                   (vectorized ? " [vectorized]" : " [interpreter]"));
      s->set_trace_level(0);
      auto plain = s->Execute(sql);
      ASSERT_TRUE(plain.ok()) << plain.status().ToString();
      s->set_trace_level(1);
      auto traced = s->Execute(sql);
      ASSERT_TRUE(traced.ok()) << traced.status().ToString();
      EXPECT_EQ(Stringify(*traced), Stringify(*plain));
      // The trace itself must be coherent: ops captured, and the final
      // emit op reporting exactly the statement's result cardinality.
      const obs::QueryTrace& t = s->last_trace();
      EXPECT_FALSE(t.ops.empty());
      EXPECT_EQ(t.emitted_rows(),
                static_cast<int64_t>(traced->rows.size()));
      EXPECT_FALSE(t.route.empty());
      s->set_trace_level(0);
    }
  }
}

TEST_F(ObsEngineTest, ExplainAnalyzeReturnsTraceAndExecutesInner) {
  engine::Database db(Profile());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  RunMixedWorkload(db, *s);

  auto normal = s->Execute("SELECT v, COUNT(*) FROM m GROUP BY v ORDER BY v");
  ASSERT_TRUE(normal.ok());
  const auto cardinality = static_cast<int64_t>(normal->rows.size());

  auto explained = s->Execute(
      "explain analyze SELECT v, COUNT(*) FROM m GROUP BY v ORDER BY v");
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  ASSERT_FALSE(explained->rows.empty());
  EXPECT_EQ(explained->column_names,
            std::vector<std::string>{"EXPLAIN ANALYZE"});
  EXPECT_EQ(s->last_trace().emitted_rows(), cardinality);
  EXPECT_EQ(s->last_trace().route, "column/vectorized");
  // The rendering mentions the final emit operator.
  std::string all;
  for (const Row& r : explained->rows) all += r[0].AsString() + "\n";
  EXPECT_NE(all.find("emit"), std::string::npos) << all;

  // EXPLAIN ANALYZE on DML executes the write (trace side effects are the
  // inner statement's side effects).
  auto dml = s->Execute(
      "EXPLAIN ANALYZE INSERT INTO m VALUES (100000, 1, 2.5)");
  ASSERT_TRUE(dml.ok()) << dml.status().ToString();
  auto check = s->Execute("SELECT COUNT(*) FROM m WHERE k = 100000");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows[0][0].AsInt(), 1);

  // Plain EXPLAIN (no ANALYZE) is not claimed by the prefix parser.
  EXPECT_FALSE(s->Execute("EXPLAIN SELECT COUNT(*) FROM m").ok());
}

TEST_F(ObsEngineTest, ColumnStorageGaugesAndZoneSkipTelemetry) {
  engine::Database db(Profile());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  RunMixedWorkload(db, *s);  // 3000 sequential keys: 2 sealed blocks + tail

  // A pk-range predicate whose bounds refute the second sealed block's
  // zone map: the scan must read fewer blocks than exist and say so.
  auto rs = s->Execute("SELECT COUNT(*) FROM m WHERE k < 100");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(s->last_vectorized());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 100);

  // StatsJson() refreshes the per-table storage gauges into the registry.
  const std::string json = db.StatsJson();
  for (const char* name :
       {"column.m.blocks_scanned", "column.m.blocks_skipped",
        "column.m.bytes_encoded", "column.m.bytes_raw"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name << "\n" << json;
  }
  auto snap = db.metrics().Snapshot();
  EXPECT_GT(snap.gauges.at("column.m.blocks_scanned"), 0);
  EXPECT_GT(snap.gauges.at("column.m.blocks_skipped"), 0);
  EXPECT_GT(snap.gauges.at("column.m.bytes_encoded"), 0);
  // Sealed blocks compress below their boxed footprint.
  EXPECT_LT(snap.gauges.at("column.m.bytes_encoded"),
            snap.gauges.at("column.m.bytes_raw"));
  // The Prometheus endpoint exposes the same gauges (dots to underscores).
  const std::string prom = db.MetricsText();
  EXPECT_NE(prom.find("column_m_blocks_skipped"), std::string::npos) << prom;

  // EXPLAIN ANALYZE surfaces the skip count on the scan operator.
  auto explained =
      s->Execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM m WHERE k < 100");
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  std::string all;
  for (const Row& r : explained->rows) all += r[0].AsString() + "\n";
  EXPECT_NE(all.find("zskip="), std::string::npos) << all;
  EXPECT_EQ(all.find("zskip=0"), std::string::npos) << all;

  // An exhaustive predicate skips nothing and the trace reports that too.
  auto full = s->Execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM m WHERE "
                         "v <> 123456");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  all.clear();
  for (const Row& r : full->rows) all += r[0].AsString() + "\n";
  EXPECT_NE(all.find("zskip=0"), std::string::npos) << all;
}

TEST_F(ObsEngineTest, SlowQueryLogAdmitsByThresholdIntoBoundedRing) {
  auto p = Profile();
  p.slow_query_threshold_us = 1;  // test-sized scans exceed 1us reliably
  p.slow_query_log_capacity = 2;
  engine::Database db(p);
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  RunMixedWorkload(db, *s);

  const uint64_t before = db.slow_query_log().total_recorded();
  EXPECT_GT(before, 0u);  // the load itself crossed the 1us threshold
  ASSERT_TRUE(s->Execute("SELECT COUNT(*) FROM m WHERE v <> 1").ok());
  ASSERT_TRUE(s->Execute("SELECT SUM(w) FROM m WHERE v > 2").ok());
  EXPECT_GE(db.slow_query_log().total_recorded(), before + 2);

  auto entries = db.slow_query_log().Entries();
  ASSERT_EQ(entries.size(), 2u);  // ring bounded at the profile capacity
  EXPECT_EQ(entries.back().sql, "SELECT SUM(w) FROM m WHERE v > 2");
  EXPECT_FALSE(entries.back().route.empty());
  EXPECT_GE(entries.back().wall_us, 1);
  EXPECT_GT(entries.back().seq, entries.front().seq);

  const std::string json = db.StatsJson();
  EXPECT_NE(json.find("SELECT SUM(w) FROM m WHERE v > 2"), std::string::npos)
      << json;
}

TEST_F(ObsEngineTest, SlowQueryLogOffByDefault) {
  engine::Database db(Profile());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  RunMixedWorkload(db, *s);
  EXPECT_EQ(db.slow_query_log().total_recorded(), 0u);
}

TEST_F(ObsEngineTest, InterpreterFallbackTraceIsCleanAndEmitMatches) {
  engine::Database db(Profile());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  RunMixedWorkload(db, *s);
  s->set_trace_level(1);

  // Subqueries are not vectorizable: the statement routes to the replica,
  // the vectorized attempt falls back, and the interpreter serves it. The
  // trace must describe only the interpreter execution.
  auto rs = s->Execute(
      "SELECT COUNT(*) FROM m WHERE v > (SELECT AVG(v) FROM m)");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_FALSE(s->last_vectorized());
  const obs::QueryTrace& t = s->last_trace();
  EXPECT_EQ(t.route, "column/interpreter");
  EXPECT_EQ(t.emitted_rows(), static_cast<int64_t>(rs->rows.size()));
  for (const obs::TraceOp& op : t.ops) {
    EXPECT_NE(op.op, "join-build");  // no leftovers from the aborted attempt
  }
}

}  // namespace
}  // namespace olxp
