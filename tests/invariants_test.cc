#include <gtest/gtest.h>

#include "benchfw/driver.h"
#include "benchmarks/fibench/fibench.h"
#include "benchmarks/subench/subench.h"
#include "benchmarks/tabench/tabench.h"

namespace olxp {
namespace {

using benchfw::AgentConfig;
using benchfw::AgentKind;
using benchfw::BenchmarkSuite;
using benchfw::LoadParams;
using benchfw::RunConfig;

LoadParams SmallParams() {
  LoadParams p;
  p.scale = 1;
  p.items = 300;
  p.load_threads = 4;
  return p;
}

RunConfig ShortRun() {
  RunConfig cfg;
  cfg.warmup_seconds = 0.05;
  cfg.measure_seconds = 0.8;
  return cfg;
}

/// Runs a concurrent mixed load (OLTP + OLAP + hybrid agents) against a
/// suite and returns a fresh session for invariant auditing.
std::unique_ptr<engine::Session> RunMixedLoad(engine::Database& db,
                                              const BenchmarkSuite& suite) {
  AgentConfig oltp;
  oltp.kind = AgentKind::kOltp;
  oltp.request_rate = -1;  // closed loop: maximum churn
  oltp.threads = 6;
  AgentConfig hybrid;
  hybrid.kind = AgentKind::kHybrid;
  hybrid.request_rate = -1;
  hybrid.threads = 3;
  AgentConfig olap;
  olap.kind = AgentKind::kOlap;
  olap.request_rate = 4;
  olap.threads = 2;
  EXPECT_TRUE(benchfw::RunCell(db, suite, {oltp, hybrid, olap}, ShortRun())
                  .ok());
  db.WaitReplicaCaughtUp();
  auto session = db.CreateSession();
  session->set_charging_enabled(false);
  return session;
}

class SubenchInvariants
    : public ::testing::TestWithParam<const char*> {};

/// TPC-C consistency conditions survive a concurrent mixed HTAP load on
/// every engine profile. These are the spec's conditions 1-3 adapted to
/// the subenchmark schema.
TEST_P(SubenchInvariants, TpccConsistencyAfterMixedLoad) {
  auto profile = engine::EngineProfile::ByName(GetParam());
  ASSERT_TRUE(profile.ok());
  BenchmarkSuite suite = benchmarks::MakeSubenchmark(SmallParams());
  engine::Database db(*profile);
  ASSERT_TRUE(benchfw::SetUp(db, suite).ok());
  auto s = RunMixedLoad(db, suite);
  ASSERT_TRUE(s->Begin().ok());  // row-store snapshot for the audit

  // Condition 1: W_YTD == SUM(D_YTD) per warehouse. Payment updates both
  // sides; a torn commit or lost update breaks the equality.
  auto w = s->Execute("SELECT w_id, w_ytd FROM warehouse ORDER BY w_id");
  ASSERT_TRUE(w.ok());
  ASSERT_FALSE(w->rows.empty());
  for (const Row& row : w->rows) {
    auto d = s->Execute("SELECT SUM(d_ytd) FROM district WHERE d_w_id = ?",
                        {row[0]});
    ASSERT_TRUE(d.ok());
    EXPECT_NEAR(row[1].AsDouble(), d->rows[0][0].AsDouble(), 0.01)
        << "warehouse " << row[0].ToString();
  }

  // Condition 2: per district, d_next_o_id - 1 == MAX(o_id) == MAX(no_o_id
  // upper bound). NewOrder increments the counter and inserts the order in
  // one transaction.
  auto districts = s->Execute(
      "SELECT d_w_id, d_id, d_next_o_id FROM district");
  ASSERT_TRUE(districts.ok());
  for (const Row& d : districts->rows) {
    auto mx = s->Execute(
        "SELECT MAX(o_id) FROM orders WHERE o_w_id = ? AND o_d_id = ?",
        {d[0], d[1]});
    ASSERT_TRUE(mx.ok());
    ASSERT_FALSE(mx->rows[0][0].is_null());
    EXPECT_EQ(d[2].AsInt() - 1, mx->rows[0][0].AsInt())
        << "district (" << d[0].ToString() << "," << d[1].ToString() << ")";
  }

  // Condition 3: every undelivered order (NEW_ORDER row) has a matching
  // ORDERS row with NULL carrier.
  auto orphan = s->Execute(
      "SELECT COUNT(*) FROM new_order no, orders o WHERE "
      "o.o_w_id = no.no_w_id AND o.o_d_id = no.no_d_id AND "
      "o.o_id = no.no_o_id AND o.o_carrier_id IS NOT NULL");
  ASSERT_TRUE(orphan.ok());
  EXPECT_EQ(orphan->rows[0][0].AsInt(), 0);

  // Order lines match o_ol_cnt for a sample of orders.
  auto sample = s->Execute(
      "SELECT o_w_id, o_d_id, o_id, o_ol_cnt FROM orders "
      "ORDER BY o_entry_d DESC LIMIT 20");
  ASSERT_TRUE(sample.ok());
  for (const Row& o : sample->rows) {
    auto cnt = s->Execute(
        "SELECT COUNT(*) FROM order_line WHERE ol_w_id = ? AND "
        "ol_d_id = ? AND ol_o_id = ?",
        {o[0], o[1], o[2]});
    ASSERT_TRUE(cnt.ok());
    EXPECT_EQ(cnt->rows[0][0].AsInt(), o[3].AsInt());
  }
  ASSERT_TRUE(s->Commit().ok());
}

INSTANTIATE_TEST_SUITE_P(Profiles, SubenchInvariants,
                         ::testing::Values("memsql-like", "tidb-like",
                                           "oceanbase-like"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

/// Banking conservation: fibench's OLTP+hybrid mix moves money between
/// accounts but never creates or destroys it (aside from DepositChecking,
/// WriteCheck, TransactSavings and the hybrids' explicit injections —
/// so we restrict the mix to the pure-transfer transactions).
TEST(FibenchInvariants, TransfersConserveTotalUnderConcurrency) {
  BenchmarkSuite suite = benchmarks::MakeFibenchmark(SmallParams());
  engine::Database db(engine::EngineProfile::TiDbLike());
  ASSERT_TRUE(benchfw::SetUp(db, suite).ok());

  AgentConfig oltp;
  oltp.kind = AgentKind::kOltp;
  oltp.request_rate = -1;
  oltp.threads = 8;
  // Amalgamate + Balance + SendPayment only (pure moves/reads).
  oltp.weight_override = {1, 1, 0, 1, 0, 0};
  ASSERT_TRUE(benchfw::RunCell(db, suite, {oltp}, ShortRun()).ok());

  db.WaitReplicaCaughtUp();
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  auto total = s->Execute(
      "SELECT SUM(sv.bal) + SUM(ck.bal) FROM saving sv JOIN checking ck "
      "ON ck.custid = sv.custid");
  ASSERT_TRUE(total.ok());
  EXPECT_NEAR(total->rows[0][0].AsDouble(), 1000 * 2000.0, 0.5);
}

/// Replica convergence: after any mixed load, draining replication makes
/// the columnar replica agree with the row store on every table count.
TEST(ReplicaInvariants, ConvergesToRowStoreAfterMixedLoad) {
  BenchmarkSuite suite = benchmarks::MakeTabenchmark(SmallParams());
  engine::Database db(engine::EngineProfile::TiDbLike());
  ASSERT_TRUE(benchfw::SetUp(db, suite).ok());
  auto s = RunMixedLoad(db, suite);

  for (const char* table :
       {"subscriber", "access_info", "special_facility", "call_forwarding"}) {
    // Row-store truth (inside a transaction pins to the row store).
    ASSERT_TRUE(s->Begin().ok());
    auto row_cnt =
        s->Execute("SELECT COUNT(*) FROM " + std::string(table));
    ASSERT_TRUE(row_cnt.ok());
    ASSERT_TRUE(s->Commit().ok());
    // Replica count via the column store directly.
    auto tid = db.TableId(table);
    ASSERT_TRUE(tid.ok());
    const storage::ColumnTable* replica = db.column_store().table(*tid);
    ASSERT_NE(replica, nullptr);
    EXPECT_EQ(static_cast<int64_t>(replica->LiveRowCount()),
              row_cnt->rows[0][0].AsInt())
        << table;
  }
}

/// Version pruning between cells never changes query results.
TEST(PruneInvariants, PruningPreservesLatestState) {
  BenchmarkSuite suite = benchmarks::MakeFibenchmark(SmallParams());
  engine::Database db(engine::EngineProfile::MemSqlLike());
  ASSERT_TRUE(benchfw::SetUp(db, suite).ok());
  auto s = RunMixedLoad(db, suite);

  auto before = s->Execute("SELECT SUM(bal), COUNT(*) FROM checking");
  ASSERT_TRUE(before.ok());
  db.PruneAllVersions(2);
  auto after = s->Execute("SELECT SUM(bal), COUNT(*) FROM checking");
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(before->rows[0][0].AsDouble(),
                   after->rows[0][0].AsDouble());
  EXPECT_EQ(before->rows[0][1].AsInt(), after->rows[0][1].AsInt());
}

}  // namespace
}  // namespace olxp
