#!/usr/bin/env python3
"""Self-test for ci/lint_engine.py: per-rule fixtures that must pass and
must fail, run against a temp directory shaped like the repo. Wired into
ctest so `ctest` alone exercises the linter."""

import importlib.util
import pathlib
import sys
import tempfile
import unittest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
LINT_PATH = REPO_ROOT / "ci" / "lint_engine.py"

spec = importlib.util.spec_from_file_location("lint_engine", LINT_PATH)
lint_engine = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lint_engine)


class LintFixtureTest(unittest.TestCase):
    def run_lint(self, files):
        """files: {relative/path: content}. Returns (exit_code, findings)."""
        with tempfile.TemporaryDirectory() as td:
            root = pathlib.Path(td)
            for rel, content in files.items():
                path = root / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(content)
            findings = []
            for top in lint_engine.SCAN_DIRS:
                top_dir = root / top
                if not top_dir.is_dir():
                    continue
                for p in sorted(top_dir.rglob("*")):
                    if p.suffix in lint_engine.CC_SUFFIXES and p.is_file():
                        lint_engine.lint_file(root, p.relative_to(root),
                                              findings)
            return findings

    def assert_rules(self, files, expected_rules):
        findings = self.run_lint(files)
        self.assertEqual(sorted(f[2] for f in findings),
                         sorted(expected_rules),
                         msg=f"findings: {findings}")

    # ---- raw-sync ----

    def test_raw_mutex_in_engine_fails(self):
        self.assert_rules(
            {"src/storage/foo.h": "#include <mutex>\nstd::mutex mu_;\n"},
            ["raw-sync"])

    def test_raw_shared_mutex_and_guards_fail(self):
        src = ("std::shared_mutex mu_;\n"
               "std::lock_guard<std::mutex> lk(mu_);\n"
               "std::unique_lock<std::mutex> ul(mu_);\n"
               "std::condition_variable cv_;\n")
        self.assert_rules({"src/exec/foo.cc": src},
                          ["raw-sync", "raw-sync", "raw-sync", "raw-sync"])

    def test_sync_header_itself_passes(self):
        self.assert_rules(
            {"src/common/sync.h": "std::mutex mu_;\nstd::shared_mutex s_;\n"},
            [])

    def test_wrapper_usage_passes(self):
        self.assert_rules(
            {"src/storage/foo.cc": "sync::MutexLock lk(mu_);\n"}, [])

    def test_raw_mutex_in_tests_passes(self):
        # The ban is on engine code; tests may build ad-hoc harnesses.
        self.assert_rules({"tests/foo_test.cc": "std::mutex mu;\n"}, [])

    def test_raw_sync_finding_carries_fix_hint(self):
        findings = self.run_lint(
            {"src/a.cc": "std::lock_guard<std::mutex> lk(mu_);\n"})
        self.assertEqual(len(findings), 1)
        self.assertIn("sync::MutexLock", findings[0][3])

    def test_lockorder_core_may_use_raw_primitives(self):
        # The witness instruments the wrappers, so it cannot be built on
        # top of them; lockorder.{h,cc} are part of the sync core.
        self.assert_rules(
            {"src/common/lockorder.cc":
             "std::mutex mu;\nstd::lock_guard<std::mutex> lk(mu);\n"}, [])

    # ---- lock-rank ----

    def test_unranked_mutex_construction_fails(self):
        self.assert_rules(
            {"src/storage/foo.h": "sync::Mutex mu_;\n"}, ["lock-rank"])

    def test_unranked_shared_mutex_construction_fails(self):
        self.assert_rules(
            {"src/storage/foo.h": "mutable sync::SharedMutex mu_;\n"},
            ["lock-rank"])

    def test_ranked_construction_passes(self):
        src = ('sync::Mutex mu_{sync::LockRank::kWalIo, "wal.io"};\n'
               'mutable sync::SharedMutex tbl_ ACQUIRED_AFTER(mu_){\n'
               '    sync::LockRank::kTableLatch, "mvcc.table"};\n')
        self.assert_rules({"src/storage/foo.h": src}, [])

    def test_ranked_on_next_line_passes(self):
        # clang-format may wrap the initializer onto the following line.
        src = ("sync::Mutex checkpoint_mu_{\n"
               '    sync::LockRank::kCheckpoint, "db.checkpoint"};\n')
        self.assert_rules({"src/engine/foo.h": src}, [])

    def test_lock_pointer_param_passes(self):
        self.assert_rules(
            {"src/benchfw/foo.cc":
             "void F(sync::Mutex* out_mu, sync::SharedMutex& r);\n"}, [])

    def test_guard_usage_is_not_a_construction(self):
        self.assert_rules(
            {"src/storage/foo.cc": "sync::MutexLock lk(mu_);\n"}, [])

    def test_unranked_in_tests_passes(self):
        # Lint scope is engine code; the constructor signature itself
        # forces tests to pass a rank anyway.
        self.assert_rules(
            {"tests/foo_test.cc": "sync::Mutex mu_;\n"}, [])

    # ---- tsa-escape ----

    def test_tsa_escape_in_engine_fails(self):
        self.assert_rules(
            {"src/storage/foo.cc":
             "void F() NO_THREAD_SAFETY_ANALYSIS {}\n"},
            ["tsa-escape"])

    def test_tsa_escape_in_sync_header_passes(self):
        self.assert_rules(
            {"src/common/sync.h":
             "#define NO_THREAD_SAFETY_ANALYSIS ...\n"}, [])

    # ---- todo-tag ----

    def test_untagged_todo_fails(self):
        self.assert_rules({"src/a.cc": "// TODO: fix this later\n"},
                          ["todo-tag"])

    def test_tagged_todo_passes(self):
        self.assert_rules({"src/a.cc": "// TODO(#42): fix this later\n"}, [])

    def test_untagged_todo_in_tests_fails(self):
        self.assert_rules({"tests/a.cc": "// TODO someday\n"}, ["todo-tag"])

    # ---- parent-include ----

    def test_parent_include_fails(self):
        self.assert_rules({"src/a.cc": '#include "../common/status.h"\n'},
                          ["parent-include"])

    def test_repo_relative_include_passes(self):
        self.assert_rules({"src/a.cc": '#include "common/status.h"\n'}, [])

    # ---- naked-status ----

    def test_naked_execute_fails(self):
        self.assert_rules({"src/a.cc": '  s.Execute("DELETE FROM t");\n'},
                          ["naked-status"])

    def test_naked_commit_via_arrow_fails(self):
        self.assert_rules({"src/a.cc": "  txn->Commit();\n"},
                          ["naked-status"])

    def test_void_discard_passes(self):
        self.assert_rules(
            {"src/a.cc": '  (void)s.Execute("X");  // reason\n'}, [])

    def test_assigned_status_passes(self):
        self.assert_rules({"src/a.cc": '  auto st = s.Execute("X");\n'}, [])

    def test_macro_continuation_line_passes(self):
        src = ("  OLXP_RETURN_NOT_OK(\n"
               "      table->InstallVersion(pk, ts, false, row));\n")
        self.assert_rules({"src/a.cc": src}, [])

    def test_naked_status_in_tests_passes(self):
        # Test code is exempt (gtest macros wrap most calls anyway).
        self.assert_rules({"tests/a.cc": "  txn->Commit();\n"}, [])

    # ---- columns-access ----

    def test_columns_access_in_engine_fails(self):
        self.assert_rules(
            {"src/exec/foo.cc": "auto& c = table.columns_[0];\n"},
            ["columns-access"])

    def test_columns_access_in_tests_fails(self):
        # The ban covers tests too: readers go through the block API.
        self.assert_rules(
            {"tests/foo_test.cc": "t.columns_.size();\n"},
            ["columns-access"])

    def test_columns_access_in_column_store_passes(self):
        self.assert_rules(
            {"src/storage/column_store.cc":
             "std::vector<std::vector<Value>> columns_;\n"}, [])

    def test_columns_access_in_column_block_passes(self):
        self.assert_rules(
            {"src/storage/column_block.h": "size_t n = columns_.size();\n"},
            [])

    # ---- blocking-under-lock ----

    def test_fsync_under_mutex_lock_fails(self):
        src = ("void F() {\n"
               "  sync::MutexLock lk(mu_);\n"
               "  ::fsync(fd_);\n"
               "}\n")
        self.assert_rules({"src/engine/foo.cc": src},
                          ["blocking-under-lock"])

    def test_sleep_under_writer_lock_fails(self):
        src = ("void F() {\n"
               "  sync::WriterLock lk(mu_);\n"
               "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
               "}\n")
        self.assert_rules({"src/exec/foo.cc": src},
                          ["blocking-under-lock"])

    def test_fstream_under_lock_fails(self):
        src = ("void F() {\n"
               "  sync::MutexLock lk(mu_);\n"
               "  std::ifstream in(path);\n"
               "}\n")
        self.assert_rules({"src/engine/foo.cc": src},
                          ["blocking-under-lock"])

    def test_blocking_in_nested_scope_under_lock_fails(self):
        src = ("void F() {\n"
               "  sync::MutexLock lk(mu_);\n"
               "  if (dirty_) {\n"
               "    ::fdatasync(fd_);\n"
               "  }\n"
               "}\n")
        self.assert_rules({"src/engine/foo.cc": src},
                          ["blocking-under-lock"])

    def test_blocking_after_guard_scope_closes_passes(self):
        src = ("void F() {\n"
               "  {\n"
               "    sync::MutexLock lk(mu_);\n"
               "    queued_ = true;\n"
               "  }\n"
               "  ::fsync(fd_);\n"
               "}\n")
        self.assert_rules({"src/engine/foo.cc": src}, [])

    def test_blocking_in_sibling_function_passes(self):
        # A guard in one function must not taint the next function.
        src = ("void F() {\n"
               "  sync::MutexLock lk(mu_);\n"
               "}\n"
               "void G() {\n"
               "  std::this_thread::sleep_for(std::chrono::seconds(1));\n"
               "}\n")
        self.assert_rules({"src/storage/foo.cc": src}, [])

    def test_fsync_counter_identifier_passes(self):
        # Identifiers that merely contain the token are not calls.
        src = ("void F() {\n"
               "  sync::MutexLock lk(mu_);\n"
               "  fsyncs_.fetch_add(1);\n"
               "  m_fsyncs_->Add(1);\n"
               "}\n")
        self.assert_rules({"src/storage/foo.cc": src}, [])

    def test_wal_writer_is_exempt(self):
        # The group-commit leader fsyncs while holding the baton by design.
        src = ("void F() {\n"
               "  sync::MutexLock lk(mu_);\n"
               "  ::fsync(fd_);\n"
               "}\n")
        self.assert_rules({"src/storage/wal.cc": src}, [])

    def test_blocking_without_lock_passes(self):
        self.assert_rules(
            {"src/common/foo.cc": "void F() { ::fsync(fd); }\n"}, [])

    def test_blocking_under_lock_in_tests_passes(self):
        src = ("void F() {\n"
               "  sync::MutexLock lk(mu_);\n"
               "  ::fsync(fd_);\n"
               "}\n")
        self.assert_rules({"tests/foo_test.cc": src}, [])

    # ---- --json output ----

    def test_json_output_is_machine_readable(self):
        import io
        import json as json_mod
        import contextlib
        import tempfile as tf
        with tf.TemporaryDirectory() as td:
            root = pathlib.Path(td)
            (root / "src").mkdir()
            (root / "src" / "a.cc").write_text("// TODO fix\n")
            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                rc = lint_engine.main(["--root", td, "--json"])
            self.assertEqual(rc, 1)
            findings = json_mod.loads(buf.getvalue())
            self.assertEqual(len(findings), 1)
            self.assertEqual(findings[0]["path"], "src/a.cc")
            self.assertEqual(findings[0]["line"], 1)
            self.assertEqual(findings[0]["rule"], "todo-tag")
            self.assertIn("message", findings[0])

    def test_json_output_empty_when_clean(self):
        import io
        import json as json_mod
        import contextlib
        import tempfile as tf
        with tf.TemporaryDirectory() as td:
            root = pathlib.Path(td)
            (root / "src").mkdir()
            (root / "src" / "a.cc").write_text("int x = 0;\n")
            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                rc = lint_engine.main(["--root", td, "--json"])
            self.assertEqual(rc, 0)
            self.assertEqual(json_mod.loads(buf.getvalue()), [])

    # ---- end-to-end on the real repo ----

    def test_real_repo_is_clean(self):
        rc = lint_engine.main(["--root", str(REPO_ROOT)])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
