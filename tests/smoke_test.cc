#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/session.h"

namespace olxp {
namespace {

TEST(Smoke, CreateInsertSelect) {
  engine::Database db(engine::EngineProfile::MemSqlLike());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE item (i_id INT PRIMARY KEY, i_name VARCHAR(24), i_price DOUBLE)").ok());
  for (int i = 0; i < 10; ++i) {
    auto rs = s->Execute("INSERT INTO item VALUES (?, ?, ?)",
                         {Value::Int(i), Value::String("it" + std::to_string(i)),
                          Value::Double(1.5 * i)});
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  }
  auto rs = s->Execute("SELECT COUNT(*), MIN(i_price), MAX(i_price) FROM item");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 10);
  EXPECT_DOUBLE_EQ(rs->rows[0][1].AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(rs->rows[0][2].AsDouble(), 13.5);

  auto one = s->Execute("SELECT i_name FROM item WHERE i_id = ?", {Value::Int(3)});
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  ASSERT_EQ(one->rows.size(), 1u);
  EXPECT_EQ(one->rows[0][0].AsString(), "it3");

  auto upd = s->Execute("UPDATE item SET i_price = i_price + 100 WHERE i_id < 3");
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  EXPECT_EQ(upd->affected_rows, 3);

  auto grp = s->Execute(
      "SELECT i_id % 2 odd, COUNT(*) c FROM item GROUP BY i_id % 2 ORDER BY odd");
  ASSERT_TRUE(grp.ok()) << grp.status().ToString();
  ASSERT_EQ(grp->rows.size(), 2u);
  EXPECT_EQ(grp->rows[0][1].AsInt(), 5);

  auto sub = s->Execute(
      "SELECT i_id FROM item WHERE i_price = (SELECT MIN(i_price) FROM item)");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  ASSERT_EQ(sub->rows.size(), 1u);
  EXPECT_EQ(sub->rows[0][0].AsInt(), 3);  // rows 0..2 got +100
}

TEST(Smoke, TxnConflictAndColumnRoute) {
  engine::EngineProfile profile = engine::EngineProfile::TiDbLike();
  profile.olap_row_fraction = 0.0;  // deterministic routing for this test
  engine::Database db(profile);
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Execute("CREATE TABLE acc (id INT PRIMARY KEY, bal DOUBLE)").ok());
  ASSERT_TRUE(s->Execute("INSERT INTO acc VALUES (1, 100.0), (2, 50.0)").ok());

  // Hybrid txn: query inside txn routes to row store.
  ASSERT_TRUE(s->Begin().ok());
  auto q = s->Execute("SELECT SUM(bal) FROM acc");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(s->last_route(), engine::RoutedStore::kRowStore);
  ASSERT_TRUE(s->Execute("UPDATE acc SET bal = bal - 10 WHERE id = 1").ok());
  ASSERT_TRUE(s->Commit().ok());

  // Stand-alone analytical query routes to the columnar replica.
  db.WaitReplicaCaughtUp();
  auto q2 = s->Execute("SELECT SUM(bal) FROM acc");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(s->last_route(), engine::RoutedStore::kColumnStore);
  EXPECT_DOUBLE_EQ(q2->rows[0][0].AsDouble(), 140.0);
}

}  // namespace
}  // namespace olxp
