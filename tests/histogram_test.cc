// LatencyHistogram edge cases: Percentile must return a defined value for
// every (histogram state, q) combination — empty histograms, single
// samples, degenerate ranges, q outside [0,1], and NaN — plus the basic
// recording/merging invariants the benchfw reports rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/histogram.h"

namespace olxp {
namespace {

TEST(Histogram, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.StdDev(), 0.0);
  for (double q : {-1.0, 0.0, 0.5, 0.999, 1.0, 2.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), 0.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.Percentile(std::numeric_limits<double>::quiet_NaN()),
                   0.0);
}

TEST(Histogram, SingleSampleIsExactAtEveryQuantile) {
  LatencyHistogram h;
  h.Record(12345);
  for (double q : {-0.5, 0.0, 0.25, 0.5, 0.9999, 1.0, 7.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), 12345.0) << "q=" << q;
  }
  EXPECT_EQ(h.min(), 12345);
  EXPECT_EQ(h.max(), 12345);
  EXPECT_DOUBLE_EQ(h.Mean(), 12345.0);
  EXPECT_DOUBLE_EQ(h.StdDev(), 0.0);  // < 2 samples
}

TEST(Histogram, IdenticalSamplesCollapseToExactValue) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(777);
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), 777.0) << "q=" << q;
  }
}

TEST(Histogram, OutOfRangeQuantilesClampToObservedRange) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 100);
  EXPECT_DOUBLE_EQ(h.Percentile(-3.0), 100.0);   // q < 0 -> min
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 100.0);    // q = 0 -> min
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 10000.0);  // q = 1 -> max
  EXPECT_DOUBLE_EQ(h.Percentile(42.0), 10000.0);
}

TEST(Histogram, NanQuantileReportsMax) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(1000);
  double p = h.Percentile(std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(std::isnan(p));
  EXPECT_DOUBLE_EQ(p, 1000.0);
}

TEST(Histogram, NegativeSamplesClampToZero) {
  LatencyHistogram h;
  h.Record(-50);
  h.Record(-1);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(Histogram, PercentilesAreMonotoneAndWithinRange) {
  LatencyHistogram h;
  for (int i = 0; i < 10000; ++i) h.Record(1 + (i * 37) % 90000);
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    double p = h.Percentile(q);
    EXPECT_GE(p, static_cast<double>(h.min()));
    EXPECT_LE(p, static_cast<double>(h.max()));
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
  // Sanity on a known uniform-ish distribution: the median lands within
  // bucket resolution (~5%) of the true middle.
  EXPECT_NEAR(h.Percentile(0.5), 45000.0, 45000.0 * 0.10);
}

TEST(Histogram, MergeCombinesCountsAndExtremes) {
  LatencyHistogram a, b;
  a.Record(100);
  a.Record(200);
  b.Record(5);
  b.Record(90000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_EQ(a.min(), 5);
  EXPECT_EQ(a.max(), 90000);
  EXPECT_DOUBLE_EQ(a.Percentile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(a.Percentile(1.0), 90000.0);
}

TEST(Histogram, MergeWithEmptySidesIsIdentity) {
  LatencyHistogram a, empty;
  a.Record(42);
  a.Merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(a.min(), 42);
  EXPECT_EQ(a.max(), 42);

  LatencyHistogram c;
  c.Merge(a);  // merging INTO an empty histogram adopts the extremes
  EXPECT_EQ(c.count(), 1);
  EXPECT_EQ(c.min(), 42);
  EXPECT_EQ(c.max(), 42);
  EXPECT_DOUBLE_EQ(c.Percentile(0.5), 42.0);
}

TEST(Histogram, ResetClearsEverything) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(i);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  h.Record(9);  // usable after Reset
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 9.0);
}

}  // namespace
}  // namespace olxp
