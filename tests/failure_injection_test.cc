#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "engine/database.h"
#include "engine/session.h"
#include "storage/replicator.h"

namespace olxp {
namespace {

storage::TableSchema KvSchema() {
  return storage::TableSchema(
      "kv", {{"k", ValueType::kInt, false}, {"v", ValueType::kInt, true}},
      {0});
}

storage::CommitRecord MakeCommit(uint64_t ts, int64_t k, int64_t v) {
  storage::CommitRecord rec;
  rec.commit_ts = ts;
  rec.commit_wall_us = NowMicros();
  storage::LogOp op;
  op.kind = storage::LogOp::Kind::kUpsert;
  op.table_id = 0;
  op.pk = {Value::Int(k)};
  op.data = {Value::Int(k), Value::Int(v)};
  rec.ops.push_back(op);
  return rec;
}

/// Stopping the replicator mid-stream and restarting it must resume from
/// the trimmed position without losing or re-applying records.
TEST(FailureInjection, ReplicatorStopResumeLosesNothing) {
  storage::ColumnStore cols;
  storage::CommitLog log;
  cols.AddTable(0, KvSchema());
  storage::Replicator rep(&log, &cols, /*lag_micros=*/0, /*poll_micros=*/100);
  rep.Start();

  for (uint64_t ts = 1; ts <= 50; ++ts) {
    log.Append(MakeCommit(ts, static_cast<int64_t>(ts), 1));
  }
  rep.CatchUp();
  EXPECT_EQ(cols.replicated_ts(), 50u);
  rep.Stop();  // crash the shipping pipeline

  // More commits land while shipping is down.
  for (uint64_t ts = 51; ts <= 80; ++ts) {
    log.Append(MakeCommit(ts, static_cast<int64_t>(ts), 1));
  }
  EXPECT_EQ(cols.replicated_ts(), 50u);

  rep.Start();  // recovery
  rep.CatchUp();
  EXPECT_EQ(cols.replicated_ts(), 80u);
  EXPECT_EQ(cols.table(0)->LiveRowCount(), 80u);
  rep.Stop();
}

/// Concurrent producers appending to the log while the replicator ships:
/// the replica converges to exactly one live row per key with the newest
/// value per key (commit order preserved).
TEST(FailureInjection, ConcurrentAppendAndShipConverges) {
  storage::ColumnStore cols;
  storage::CommitLog log;
  cols.AddTable(0, KvSchema());
  storage::Replicator rep(&log, &cols, /*lag_micros=*/0, /*poll_micros=*/50);
  rep.Start();

  std::atomic<uint64_t> next_ts{0};
  std::mutex order_mu;  // commit order must match ts order in the log
  std::vector<std::thread> producers;
  constexpr int kKeys = 32;
  constexpr int kWritesPerThread = 400;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kWritesPerThread; ++i) {
        std::lock_guard<std::mutex> lk(order_mu);
        uint64_t ts = ++next_ts;
        log.Append(MakeCommit(ts, (t * kWritesPerThread + i) % kKeys,
                              static_cast<int64_t>(ts)));
      }
    });
  }
  for (auto& p : producers) p.join();
  rep.CatchUp();
  EXPECT_EQ(cols.replicated_ts(), next_ts.load());
  EXPECT_EQ(cols.table(0)->LiveRowCount(), static_cast<size_t>(kKeys));
  rep.Stop();
}

/// A session whose statement fails mid-transaction leaves the engine in a
/// reusable state: the next transaction on the same session succeeds and
/// all row locks are free for other sessions.
TEST(FailureInjection, SessionRecoversAfterMidTxnFailure) {
  engine::Database db(engine::EngineProfile::TiDbLike());
  auto s1 = db.CreateSession();
  auto s2 = db.CreateSession();
  s1->set_charging_enabled(false);
  s2->set_charging_enabled(false);
  ASSERT_TRUE(s1->Execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)").ok());
  ASSERT_TRUE(s1->Execute("INSERT INTO t VALUES (1, 10)").ok());

  ASSERT_TRUE(s1->Begin().ok());
  ASSERT_TRUE(s1->Execute("UPDATE t SET b = 11 WHERE a = 1").ok());
  EXPECT_FALSE(s1->Execute("INSERT INTO t VALUES (1, 0)").ok());  // dup
  EXPECT_FALSE(s1->InTransaction());

  // s2 can lock the row immediately (s1's failed txn released it).
  ASSERT_TRUE(s2->Begin().ok());
  EXPECT_TRUE(s2->Execute("UPDATE t SET b = 12 WHERE a = 1").ok());
  ASSERT_TRUE(s2->Commit().ok());

  // s1 continues normally.
  auto rs = s1->Execute("SELECT b FROM t WHERE a = 1");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(s1->Begin().ok());
  auto fresh = s1->Execute("SELECT b FROM t WHERE a = 1");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows[0][0].AsInt(), 12);
  ASSERT_TRUE(s1->Commit().ok());
}

/// Lock-timeout storms (many writers on one row with a tiny deadline) must
/// degrade into retryable errors, never corrupt state or deadlock the
/// process.
TEST(FailureInjection, LockTimeoutStormStaysConsistent) {
  engine::EngineProfile p = engine::EngineProfile::TiDbLike();
  p.lock_timeout_micros = 500;  // aggressive deadline
  engine::Database db(p);
  {
    auto s = db.CreateSession();
    s->set_charging_enabled(false);
    ASSERT_TRUE(s->Execute("CREATE TABLE c (a INT PRIMARY KEY, n INT)").ok());
    ASSERT_TRUE(s->Execute("INSERT INTO c VALUES (1, 0)").ok());
  }
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      auto s = db.CreateSession();
      s->set_charging_enabled(false);
      for (int i = 0; i < 50; ++i) {
        while (true) {
          auto rs = s->Execute("UPDATE c SET n = n + 1 WHERE a = 1");
          if (rs.ok()) {
            committed.fetch_add(1);
            break;
          }
          if (!rs.status().IsRetryable()) {
            ADD_FAILURE() << rs.status().ToString();
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  ASSERT_TRUE(s->Begin().ok());
  auto n = s->Execute("SELECT n FROM c WHERE a = 1");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->rows[0][0].AsInt(), committed.load());
  EXPECT_EQ(committed.load(), 400);
  ASSERT_TRUE(s->Commit().ok());
}

}  // namespace
}  // namespace olxp
