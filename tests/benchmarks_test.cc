#include <gtest/gtest.h>

#include "benchfw/driver.h"
#include "benchmarks/chbench/chbench.h"
#include "benchmarks/fibench/fibench.h"
#include "benchmarks/subench/subench.h"
#include "benchmarks/tabench/tabench.h"

namespace olxp {
namespace {

using benchfw::BenchmarkSuite;
using benchfw::LoadParams;

LoadParams TinyParams() {
  LoadParams p;
  p.scale = 1;
  p.items = 200;
  p.load_threads = 4;
  return p;
}

struct SuiteCase {
  std::string label;
  std::function<BenchmarkSuite()> make;
  std::function<engine::EngineProfile()> profile;
};

class SuiteSmokeTest : public ::testing::TestWithParam<SuiteCase> {};

/// Every workload unit of every suite must run cleanly on a tiny load.
TEST_P(SuiteSmokeTest, AllWorkloadBodiesExecute) {
  const SuiteCase& tc = GetParam();
  BenchmarkSuite suite = tc.make();
  engine::Database db(tc.profile());
  ASSERT_TRUE(benchfw::SetUp(db, suite).ok());

  auto session = db.CreateSession();
  session->set_charging_enabled(false);
  Rng rng(7);
  for (auto kind : {benchfw::AgentKind::kOltp, benchfw::AgentKind::kOlap,
                    benchfw::AgentKind::kHybrid}) {
    for (const auto& profile : suite.ProfilesFor(kind)) {
      for (int rep = 0; rep < 5; ++rep) {
        Status st = profile.body(*session, rng);
        // Application-level aborts (forced rollback, insufficient funds,
        // duplicate insert) are expected in benchmark semantics; engine
        // errors are not.
        if (!st.ok()) {
          EXPECT_TRUE(st.code() == StatusCode::kAborted ||
                      st.IsRetryable())
              << suite.name << "/" << profile.name << ": " << st.ToString();
        }
        ASSERT_FALSE(session->InTransaction())
            << suite.name << "/" << profile.name
            << " left a transaction open";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSuites, SuiteSmokeTest,
    ::testing::Values(
        SuiteCase{"subench_memsql",
                  [] { return benchmarks::MakeSubenchmark(TinyParams()); },
                  [] { return engine::EngineProfile::MemSqlLike(); }},
        SuiteCase{"subench_tidb",
                  [] { return benchmarks::MakeSubenchmark(TinyParams()); },
                  [] { return engine::EngineProfile::TiDbLike(); }},
        SuiteCase{"fibench_memsql",
                  [] { return benchmarks::MakeFibenchmark(TinyParams()); },
                  [] { return engine::EngineProfile::MemSqlLike(); }},
        SuiteCase{"fibench_tidb",
                  [] { return benchmarks::MakeFibenchmark(TinyParams()); },
                  [] { return engine::EngineProfile::TiDbLike(); }},
        SuiteCase{"tabench_memsql",
                  [] { return benchmarks::MakeTabenchmark(TinyParams()); },
                  [] { return engine::EngineProfile::MemSqlLike(); }},
        SuiteCase{"tabench_tidb",
                  [] { return benchmarks::MakeTabenchmark(TinyParams()); },
                  [] { return engine::EngineProfile::TiDbLike(); }},
        SuiteCase{"chbench_memsql",
                  [] { return benchmarks::MakeChBenchmark(TinyParams()); },
                  [] { return engine::EngineProfile::MemSqlLike(); }},
        SuiteCase{"chbench_tidb",
                  [] { return benchmarks::MakeChBenchmark(TinyParams()); },
                  [] { return engine::EngineProfile::TiDbLike(); }},
        SuiteCase{"subench_oceanbase",
                  [] { return benchmarks::MakeSubenchmark(TinyParams()); },
                  [] { return engine::EngineProfile::OceanBaseLike(); }}),
    [](const ::testing::TestParamInfo<SuiteCase>& info) {
      return info.param.label;
    });

/// Table II invariants: table/column/index counts and read-only shares.
TEST(TableTwo, WorkloadFeatureCounts) {
  struct Expect {
    std::function<BenchmarkSuite()> make;
    int tables, columns, indexes, txns, queries, hybrids;
    double ro_oltp, ro_hybrid;
  };
  const Expect cases[] = {
      {[] { return benchmarks::MakeSubenchmark(TinyParams()); }, 9, 92, 3, 5,
       9, 5, 0.08, 0.60},
      {[] { return benchmarks::MakeFibenchmark(TinyParams()); }, 3, 6, 4, 6,
       4, 6, 0.15, 0.20},
      {[] { return benchmarks::MakeTabenchmark(TinyParams()); }, 4, 51, 5, 7,
       5, 6, 0.80, 0.40},
  };
  for (const Expect& e : cases) {
    BenchmarkSuite suite = e.make();
    engine::Database db(engine::EngineProfile::MemSqlLike());
    auto session = db.CreateSession();
    session->set_charging_enabled(false);
    ASSERT_TRUE(suite.create_schema(*session).ok());
    int tables = db.row_store().num_tables();
    int columns = 0, indexes = 0;
    for (int id : db.row_store().TableIds()) {
      columns += db.GetSchema(id).num_columns();
      indexes += static_cast<int>(db.GetSchema(id).indexes().size());
    }
    EXPECT_EQ(tables, e.tables) << suite.name;
    EXPECT_EQ(columns, e.columns) << suite.name;
    EXPECT_EQ(indexes, e.indexes) << suite.name;
    EXPECT_EQ(static_cast<int>(suite.transactions.size()), e.txns);
    EXPECT_EQ(static_cast<int>(suite.queries.size()), e.queries);
    EXPECT_EQ(static_cast<int>(suite.hybrids.size()), e.hybrids);
    EXPECT_NEAR(suite.ReadOnlyShare(benchfw::AgentKind::kOltp), e.ro_oltp,
                1e-9)
        << suite.name;
    EXPECT_NEAR(suite.ReadOnlyShare(benchfw::AgentKind::kHybrid), e.ro_hybrid,
                1e-9)
        << suite.name;
  }
}

/// CH-benCHmark access-mix invariant (10/9/3 of 22 queries touch
/// SUPPLIER/NATION/REGION) is asserted on the SQL text.
TEST(ChBench, StitchedAccessMix) {
  BenchmarkSuite suite = benchmarks::MakeChBenchmark(TinyParams());
  ASSERT_EQ(suite.queries.size(), 22u);
  EXPECT_FALSE(suite.has_hybrid_txn);
  EXPECT_TRUE(suite.hybrids.empty());
}

}  // namespace
}  // namespace olxp
