#include <gtest/gtest.h>

#include <atomic>

#include "benchfw/driver.h"

#include "common/clock.h"
#include "benchfw/report.h"
#include "benchmarks/fibench/fibench.h"

namespace olxp::benchfw {
namespace {

TEST(Workload, PickWeightedDistribution) {
  std::vector<TxnProfile> profiles;
  profiles.push_back({"a", 80, false, nullptr});
  profiles.push_back({"b", 15, false, nullptr});
  profiles.push_back({"c", 5, false, nullptr});
  Rng rng(1);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) counts[PickWeighted(profiles, rng)]++;
  EXPECT_NEAR(counts[0] / 20000.0, 0.80, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.15, 0.02);
  EXPECT_NEAR(counts[2] / 20000.0, 0.05, 0.02);
}

TEST(Workload, ReadOnlyShare) {
  BenchmarkSuite suite;
  suite.transactions = {{"w", 85, false, nullptr}, {"r", 15, true, nullptr}};
  EXPECT_NEAR(suite.ReadOnlyShare(AgentKind::kOltp), 0.15, 1e-9);
  EXPECT_EQ(suite.ReadOnlyShare(AgentKind::kOlap), 0.0);  // empty class
}

/// Minimal synthetic suite: bodies count invocations and sleep briefly.
BenchmarkSuite CountingSuite(std::atomic<int64_t>* oltp_count,
                             std::atomic<int64_t>* olap_count) {
  BenchmarkSuite suite;
  suite.name = "counting";
  suite.create_schema = [](engine::Session&) { return Status::OK(); };
  suite.load = [](engine::Database&, const LoadParams&) {
    return Status::OK();
  };
  suite.transactions.push_back(
      {"tick", 1, false, [oltp_count](engine::Session&, Rng&) {
         oltp_count->fetch_add(1);
         SleepMicros(200);
         return Status::OK();
       }});
  suite.queries.push_back(
      {"query", 1, true, [olap_count](engine::Session&, Rng&) {
         olap_count->fetch_add(1);
         SleepMicros(500);
         return Status::OK();
       }});
  return suite;
}

TEST(Driver, OpenLoopHitsRequestedRate) {
  std::atomic<int64_t> oltp{0}, olap{0};
  BenchmarkSuite suite = CountingSuite(&oltp, &olap);
  engine::Database db(engine::EngineProfile::MemSqlLike());

  AgentConfig agent;
  agent.kind = AgentKind::kOltp;
  agent.request_rate = 200;
  agent.threads = 4;
  RunConfig cfg;
  cfg.warmup_seconds = 0.1;
  cfg.measure_seconds = 1.0;
  RunResult result = *RunCell(db, suite, {agent}, cfg);

  const KindStats& k = result.Of(AgentKind::kOltp);
  EXPECT_NEAR(k.Throughput(result.measure_seconds), 200, 30);
  EXPECT_EQ(k.errors, 0u);
  EXPECT_GT(k.latency.Mean(), 0);
}

TEST(Driver, ClosedLoopSaturates) {
  std::atomic<int64_t> oltp{0}, olap{0};
  BenchmarkSuite suite = CountingSuite(&oltp, &olap);
  engine::Database db(engine::EngineProfile::MemSqlLike());

  AgentConfig agent;
  agent.kind = AgentKind::kOltp;
  agent.request_rate = -1;  // closed loop
  agent.threads = 4;
  RunConfig cfg;
  cfg.warmup_seconds = 0.05;
  cfg.measure_seconds = 0.5;
  RunResult result = *RunCell(db, suite, {agent}, cfg);
  // 4 threads x ~200us per op => ~20k/s; allow a broad band.
  EXPECT_GT(result.Of(AgentKind::kOltp).Throughput(result.measure_seconds),
            4000);
}

TEST(Driver, MixedAgentClassesReportSeparately) {
  std::atomic<int64_t> oltp{0}, olap{0};
  BenchmarkSuite suite = CountingSuite(&oltp, &olap);
  engine::Database db(engine::EngineProfile::MemSqlLike());

  AgentConfig a1;
  a1.kind = AgentKind::kOltp;
  a1.request_rate = 100;
  a1.threads = 2;
  AgentConfig a2;
  a2.kind = AgentKind::kOlap;
  a2.request_rate = 20;
  a2.threads = 2;
  RunConfig cfg;
  cfg.warmup_seconds = 0.05;
  cfg.measure_seconds = 0.6;
  RunResult result = *RunCell(db, suite, {a1, a2}, cfg);
  EXPECT_NEAR(result.Of(AgentKind::kOltp).Throughput(result.measure_seconds),
              100, 25);
  EXPECT_NEAR(result.Of(AgentKind::kOlap).Throughput(result.measure_seconds),
              20, 8);
}

TEST(Driver, RetryableFailuresAreRetried) {
  BenchmarkSuite suite;
  suite.create_schema = [](engine::Session&) { return Status::OK(); };
  suite.load = [](engine::Database&, const LoadParams&) {
    return Status::OK();
  };
  std::atomic<int> attempts{0};
  suite.transactions.push_back(
      {"flaky", 1, false, [&attempts](engine::Session&, Rng&) {
         // Fail the first attempt of every request, succeed on retry.
         return attempts.fetch_add(1) % 2 == 0
                    ? Status::Conflict("induced")
                    : Status::OK();
       }});
  engine::Database db(engine::EngineProfile::MemSqlLike());
  AgentConfig agent;
  agent.kind = AgentKind::kOltp;
  agent.request_rate = 100;
  agent.threads = 2;
  RunConfig cfg;
  cfg.warmup_seconds = 0.05;
  cfg.measure_seconds = 0.5;
  RunResult result = *RunCell(db, suite, {agent}, cfg);
  const KindStats& k = result.Of(AgentKind::kOltp);
  EXPECT_GT(k.retries, 0u);
  EXPECT_EQ(k.errors, 0u);
  EXPECT_GT(k.committed, 0u);
}

TEST(Driver, NonRetryableFailuresCountAsErrors) {
  BenchmarkSuite suite;
  suite.create_schema = [](engine::Session&) { return Status::OK(); };
  suite.load = [](engine::Database&, const LoadParams&) {
    return Status::OK();
  };
  suite.transactions.push_back({"failing", 1, false,
                                [](engine::Session&, Rng&) {
                                  return Status::Aborted("app abort");
                                }});
  engine::Database db(engine::EngineProfile::MemSqlLike());
  AgentConfig agent;
  agent.kind = AgentKind::kOltp;
  agent.request_rate = 50;
  agent.threads = 1;
  RunConfig cfg;
  cfg.warmup_seconds = 0.05;
  cfg.measure_seconds = 0.4;
  RunResult result = *RunCell(db, suite, {agent}, cfg);
  const KindStats& k = result.Of(AgentKind::kOltp);
  EXPECT_GT(k.errors, 0u);
  EXPECT_EQ(k.committed, 0u);
  EXPECT_EQ(k.retries, 0u);
}

TEST(Driver, WeightOverrideRestrictsMix) {
  std::atomic<int64_t> first{0}, second{0};
  BenchmarkSuite suite;
  suite.create_schema = [](engine::Session&) { return Status::OK(); };
  suite.load = [](engine::Database&, const LoadParams&) {
    return Status::OK();
  };
  suite.transactions.push_back({"first", 1, false,
                                [&first](engine::Session&, Rng&) {
                                  first.fetch_add(1);
                                  return Status::OK();
                                }});
  suite.transactions.push_back({"second", 1, false,
                                [&second](engine::Session&, Rng&) {
                                  second.fetch_add(1);
                                  return Status::OK();
                                }});
  engine::Database db(engine::EngineProfile::MemSqlLike());
  AgentConfig agent;
  agent.kind = AgentKind::kOltp;
  agent.request_rate = 200;
  agent.threads = 2;
  agent.weight_override = {1, 0};  // only the first profile may fire
  RunConfig cfg;
  cfg.warmup_seconds = 0.05;
  cfg.measure_seconds = 0.4;
  RunResult result = *RunCell(db, suite, {agent}, cfg);
  EXPECT_GT(first.load(), 0);
  EXPECT_EQ(second.load(), 0);
  EXPECT_GT(result.Of(AgentKind::kOltp).committed, 0u);
}

/// Two-profile suite whose bodies must never run (validation-rejection
/// cells). The counters prove no thread was spawned before the error.
BenchmarkSuite TwoProfileSuite(std::atomic<int64_t>* calls) {
  BenchmarkSuite suite;
  suite.create_schema = [](engine::Session&) { return Status::OK(); };
  suite.load = [](engine::Database&, const LoadParams&) {
    return Status::OK();
  };
  for (const char* name : {"p0", "p1"}) {
    suite.transactions.push_back({name, 1, false,
                                  [calls](engine::Session&, Rng&) {
                                    calls->fetch_add(1);
                                    return Status::OK();
                                  }});
  }
  return suite;
}

TEST(Driver, WeightOverrideLengthMismatchRejected) {
  std::atomic<int64_t> calls{0};
  BenchmarkSuite suite = TwoProfileSuite(&calls);
  engine::Database db(engine::EngineProfile::MemSqlLike());
  AgentConfig agent;
  agent.kind = AgentKind::kOltp;
  agent.request_rate = -1;
  agent.threads = 2;
  RunConfig cfg;
  cfg.warmup_seconds = 0.01;
  cfg.measure_seconds = 0.05;

  agent.weight_override = {1.0};  // short: pick() would mis-sample
  auto short_result = RunCell(db, suite, {agent}, cfg);
  ASSERT_FALSE(short_result.ok());
  EXPECT_EQ(short_result.status().code(), StatusCode::kInvalidArgument);

  agent.weight_override = {1.0, 1.0, 1.0};  // long: reads out of bounds
  auto long_result = RunCell(db, suite, {agent}, cfg);
  ASSERT_FALSE(long_result.ok());
  EXPECT_EQ(long_result.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(calls.load(), 0);  // rejected before any worker spawned
}

TEST(Driver, WeightOverrideNonPositiveTotalRejected) {
  std::atomic<int64_t> calls{0};
  BenchmarkSuite suite = TwoProfileSuite(&calls);
  engine::Database db(engine::EngineProfile::MemSqlLike());
  AgentConfig agent;
  agent.kind = AgentKind::kOltp;
  agent.request_rate = -1;
  agent.threads = 1;
  RunConfig cfg;
  cfg.warmup_seconds = 0.01;
  cfg.measure_seconds = 0.05;

  agent.weight_override = {0.0, 0.0};
  auto zero_result = RunCell(db, suite, {agent}, cfg);
  ASSERT_FALSE(zero_result.ok());
  EXPECT_EQ(zero_result.status().code(), StatusCode::kInvalidArgument);

  agent.weight_override = {1.0, -1.0};
  auto negative_result = RunCell(db, suite, {agent}, cfg);
  ASSERT_FALSE(negative_result.ok());
  EXPECT_EQ(negative_result.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(calls.load(), 0);
}

TEST(Report, FormattingSmoke) {
  KindStats k;
  k.latency.Record(1500);
  k.committed = 10;
  std::string line = FormatKindStats(AgentKind::kOltp, k, 1.0);
  EXPECT_NE(line.find("OLTP"), std::string::npos);
  EXPECT_NE(line.find("tput"), std::string::npos);
  EXPECT_EQ(FigureRow("fig1", 2, "m", 3.5), "fig1,x=2.000,m=3.5000");
}

TEST(Driver, SetUpLoadsSuite) {
  using benchfw::SetUp;  // disambiguate from gtest SetUp
  benchfw::LoadParams p;
  p.scale = 1;
  BenchmarkSuite suite = benchmarks::MakeFibenchmark(p);
  engine::Database db(engine::EngineProfile::MemSqlLike());
  ASSERT_TRUE(benchfw::SetUp(db, suite).ok());
  auto s = db.CreateSession();
  s->set_charging_enabled(false);
  auto rs = s->Execute("SELECT COUNT(*) FROM account");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1000);
}

}  // namespace
}  // namespace olxp::benchfw
