#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "storage/column_store.h"
#include "storage/lock_manager.h"
#include "storage/oracle.h"
#include "storage/replicator.h"
#include "storage/row_store.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace olxp::storage {
namespace {

TableSchema KvSchema() {
  return TableSchema("kv",
                     {{"k", ValueType::kInt, false},
                      {"v", ValueType::kString, true},
                      {"n", ValueType::kInt, true}},
                     {0});
}

TableSchema CompositeSchema() {
  return TableSchema("comp",
                     {{"a", ValueType::kInt, false},
                      {"b", ValueType::kString, false},
                      {"x", ValueType::kDouble, true}},
                     {0, 1});
}

Row KvRow(int64_t k, const std::string& v, int64_t n) {
  return {Value::Int(k), Value::String(v), Value::Int(n)};
}

// --------------------------------- schema ---------------------------------

TEST(Schema, ColumnIndexCaseInsensitive) {
  TableSchema s = KvSchema();
  EXPECT_EQ(s.ColumnIndex("K"), 0);
  EXPECT_EQ(s.ColumnIndex("v"), 1);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
}

TEST(Schema, NormalizeRowCoercesAndChecksNulls) {
  TableSchema s = KvSchema();
  auto ok = s.NormalizeRow({Value::String("5"), Value::Null(), Value::Double(
                                                                   2.9)});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[0].AsInt(), 5);
  EXPECT_EQ((*ok)[2].AsInt(), 3);  // 2.9 -> INT rounds
  EXPECT_FALSE(s.NormalizeRow({Value::Null(), Value::Null(), Value::Null()})
                   .ok());  // pk NOT NULL
  EXPECT_FALSE(s.NormalizeRow({Value::Int(1)}).ok());  // arity
}

TEST(Schema, KeyExtractionAndIndexes) {
  TableSchema s = CompositeSchema();
  Row row = {Value::Int(1), Value::String("x"), Value::Double(5)};
  Row pk = s.ExtractPrimaryKey(row);
  ASSERT_EQ(pk.size(), 2u);
  EXPECT_EQ(pk[1].AsString(), "x");
  ASSERT_TRUE(s.AddIndex({"by_x", {2}, false}).ok());
  EXPECT_FALSE(s.AddIndex({"by_x", {2}, false}).ok());  // duplicate
  EXPECT_FALSE(s.AddIndex({"bad", {9}, false}).ok());   // out of range
}

TEST(Schema, KeyLessPrefixSemantics) {
  KeyLess less;
  Row ab = {Value::Int(1), Value::Int(2)};
  Row a = {Value::Int(1)};
  EXPECT_TRUE(less(a, ab));   // prefix sorts before extension
  EXPECT_FALSE(less(ab, a));
}

// -------------------------------- MvccTable --------------------------------

TEST(MvccTable, VisibilityByTimestamp) {
  MvccTable t(0, KvSchema());
  EXPECT_TRUE(t.InstallVersion({Value::Int(1)}, 10, false, KvRow(1, "v10", 0)).ok());
  EXPECT_TRUE(t.InstallVersion({Value::Int(1)}, 20, false, KvRow(1, "v20", 0)).ok());

  EXPECT_FALSE(t.Get({Value::Int(1)}, 9).has_value());
  EXPECT_EQ(t.Get({Value::Int(1)}, 10)->at(1).AsString(), "v10");
  EXPECT_EQ(t.Get({Value::Int(1)}, 15)->at(1).AsString(), "v10");
  EXPECT_EQ(t.Get({Value::Int(1)}, 20)->at(1).AsString(), "v20");
  EXPECT_EQ(t.Get({Value::Int(1)}, 999)->at(1).AsString(), "v20");
  EXPECT_EQ(t.LatestCommitTs({Value::Int(1)}), 20u);
  EXPECT_EQ(t.LatestCommitTs({Value::Int(2)}), 0u);
}

TEST(MvccTable, TombstoneHidesRow) {
  MvccTable t(0, KvSchema());
  EXPECT_TRUE(t.InstallVersion({Value::Int(1)}, 10, false, KvRow(1, "a", 0)).ok());
  EXPECT_TRUE(t.InstallVersion({Value::Int(1)}, 20, true, {}).ok());
  EXPECT_TRUE(t.Get({Value::Int(1)}, 15).has_value());
  EXPECT_FALSE(t.Get({Value::Int(1)}, 25).has_value());
  // Resurrection.
  EXPECT_TRUE(t.InstallVersion({Value::Int(1)}, 30, false, KvRow(1, "b", 0)).ok());
  EXPECT_EQ(t.Get({Value::Int(1)}, 35)->at(1).AsString(), "b");
}

TEST(MvccTable, ScanSnapshotAndOrder) {
  MvccTable t(0, KvSchema());
  for (int i = 5; i >= 1; --i) {
    EXPECT_TRUE(t.InstallVersion({Value::Int(i)}, 10 + i, false, KvRow(i, "v", i)).ok());
  }
  std::vector<int64_t> keys;
  t.Scan(13, [&](const Row& r) {
    keys.push_back(r[0].AsInt());
    return true;
  });
  // Snapshot 13 sees commits at ts 11..13 => keys 1..3 in pk order.
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], 1);
  EXPECT_EQ(keys[2], 3);
}

TEST(MvccTable, ScanEarlyStop) {
  MvccTable t(0, KvSchema());
  for (int i = 1; i <= 10; ++i) {
    EXPECT_TRUE(t.InstallVersion({Value::Int(i)}, i, false, KvRow(i, "v", i)).ok());
  }
  int count = 0;
  t.Scan(100, [&](const Row&) { return ++count < 4; });
  EXPECT_EQ(count, 4);
}

TEST(MvccTable, PkRangeWithCompositePrefix) {
  MvccTable t(0, CompositeSchema());
  uint64_t ts = 0;
  for (int a = 1; a <= 3; ++a) {
    for (char b = 'a'; b <= 'c'; ++b) {
      EXPECT_TRUE(t.InstallVersion({Value::Int(a), Value::String(std::string(1, b))},
                       ++ts, false,
                       {Value::Int(a), Value::String(std::string(1, b)),
                        Value::Double(a)}).ok());
    }
  }
  // Prefix range [a=2, a=2] should return all three b's of a=2.
  std::vector<std::string> bs;
  t.ScanPkRange({Value::Int(2)}, {Value::Int(2)}, 100, [&](const Row& r) {
    bs.push_back(r[1].AsString());
    return true;
  });
  ASSERT_EQ(bs.size(), 3u);
  EXPECT_EQ(bs[0], "a");
  EXPECT_EQ(bs[2], "c");
  // Full-key range.
  int n = 0;
  t.ScanPkRange({Value::Int(1), Value::String("b")},
                {Value::Int(2), Value::String("a")}, 100, [&](const Row&) {
                  ++n;
                  return true;
                });
  EXPECT_EQ(n, 3);  // (1,b), (1,c), (2,a)
}

TEST(MvccTable, SecondaryIndexLookupAndStaleEntries) {
  TableSchema schema = KvSchema();
  ASSERT_TRUE(schema.AddIndex({"by_n", {2}, false}).ok());
  MvccTable t(0, schema);
  EXPECT_TRUE(t.InstallVersion({Value::Int(1)}, 1, false, KvRow(1, "x", 7)).ok());
  EXPECT_TRUE(t.InstallVersion({Value::Int(2)}, 2, false, KvRow(2, "y", 7)).ok());
  EXPECT_TRUE(t.InstallVersion({Value::Int(3)}, 3, false, KvRow(3, "z", 8)).ok());

  std::vector<Row> out;
  t.IndexLookup(0, {Value::Int(7)}, 100, &out);
  EXPECT_EQ(out.size(), 2u);

  // Update row 1's n to 9: the old (7 -> 1) index entry is stale and must
  // be filtered by verification.
  EXPECT_TRUE(t.InstallVersion({Value::Int(1)}, 4, false, KvRow(1, "x", 9)).ok());
  out.clear();
  t.IndexLookup(0, {Value::Int(7)}, 100, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0].AsInt(), 2);
  out.clear();
  t.IndexLookup(0, {Value::Int(9)}, 100, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0].AsInt(), 1);
  // Old snapshot still sees the old value through the index.
  out.clear();
  t.IndexLookup(0, {Value::Int(7)}, 3, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(MvccTable, AddIndexBackfills) {
  MvccTable t(0, KvSchema());
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(t.InstallVersion({Value::Int(i)}, i, false, KvRow(i, "v", i % 2)).ok());
  }
  EXPECT_TRUE(t.InstallVersion({Value::Int(5)}, 6, true, {}).ok());  // deleted: no entry
  ASSERT_TRUE(t.AddIndex({"by_n", {2}, false}).ok());
  std::vector<Row> out;
  t.IndexLookup(0, {Value::Int(1)}, 100, &out);
  EXPECT_EQ(out.size(), 2u);  // keys 1, 3 (5 deleted)
}

TEST(MvccTable, InstallVersionRejectsNonMonotoneCommitTs) {
  MvccTable t(0, KvSchema());
  Row pk = {Value::Int(1)};
  ASSERT_TRUE(t.InstallVersion(pk, 5, false, KvRow(1, "v5", 0)).ok());
  // Installing below the chain head must be refused (a release-build
  // Status, not a compiled-out assert): VisibleVersion depends on the
  // ascending order and would serve wrong versions afterwards.
  Status bad = t.InstallVersion(pk, 3, false, KvRow(1, "v3", 0));
  EXPECT_EQ(bad.code(), StatusCode::kInternal);
  EXPECT_EQ(t.TotalVersionCount(), 1u);
  EXPECT_EQ(t.Get(pk, 10)->at(1).AsString(), "v5");
  // Equal timestamps remain allowed (recovery replays at original ts).
  EXPECT_TRUE(t.InstallVersion(pk, 5, false, KvRow(1, "v5b", 0)).ok());
}

TEST(MvccTable, VacuumBelowTruncatesErasesAndPurges) {
  TableSchema schema = KvSchema();
  MvccTable t(0, schema);
  ASSERT_TRUE(t.AddIndex({"by_n", {2}, false}).ok());
  Row pk1 = {Value::Int(1)};
  Row pk2 = {Value::Int(2)};
  // pk1: five updates moving the indexed column each time.
  for (uint64_t ts = 1; ts <= 5; ++ts) {
    ASSERT_TRUE(
        t.InstallVersion(pk1, ts, false, KvRow(1, "v", 100 + ts)).ok());
  }
  // pk2: insert then tombstone.
  ASSERT_TRUE(t.InstallVersion(pk2, 6, false, KvRow(2, "w", 7)).ok());
  ASSERT_TRUE(t.InstallVersion(pk2, 7, true, {}).ok());
  EXPECT_EQ(t.IndexEntryCount(), 6u);  // 5 stale-ish for pk1 + 1 for pk2

  // Watermark 4: pk1 keeps ts=4 (visible at 4) and ts=5; pk2's tombstone
  // at 7 is above the watermark, so the chain survives.
  VacuumStats s1 = t.VacuumBelow(4, 1);  // batch_rows=1: many latch drops
  EXPECT_EQ(s1.versions_removed, 3u);
  EXPECT_EQ(s1.chains_removed, 0u);
  EXPECT_EQ(s1.index_entries_removed, 3u);
  EXPECT_TRUE(t.Get(pk1, 4).has_value());
  EXPECT_EQ(t.Get(pk1, 4)->at(2).AsInt(), 104);
  EXPECT_FALSE(t.Get(pk1, 3).has_value());  // reclaimed history

  // Watermark 10: pk1 truncates to ts=5 only; pk2 is a dead tombstone and
  // disappears entirely, index entry included.
  VacuumStats s2 = t.VacuumBelow(10, 64);
  EXPECT_EQ(s2.chains_removed, 1u);
  EXPECT_EQ(t.ApproxRowCount(), 1u);
  EXPECT_EQ(t.TotalVersionCount(), 1u);
  EXPECT_EQ(t.IndexEntryCount(), 1u);
  std::vector<Row> out;
  t.IndexLookup(0, {Value::Int(105)}, 100, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0].AsInt(), 1);
}

TEST(MvccTable, ChunkedScanStaysConsistentAcrossLatchDrops) {
  MvccTable t(0, KvSchema());
  t.set_scan_chunk_rows(8);  // many drops across 100 rows
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.InstallVersion({Value::Int(i)}, 10, false,
                                 KvRow(i, "v", i))
                    .ok());
  }
  // Concurrent installer bumping versions at newer timestamps while a
  // snapshot scan at ts=10 walks the table in chunks.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t ts = 11;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 100 && !stop.load(std::memory_order_relaxed);
           ++i) {
        ASSERT_TRUE(t.InstallVersion({Value::Int(i)}, ts, false,
                                     KvRow(i, "new", 1000 + i))
                        .ok());
      }
      ++ts;
    }
  });
  for (int round = 0; round < 50; ++round) {
    int n = 0;
    bool all_snapshot = true;
    t.Scan(10, [&](const Row& row) {
      ++n;
      if (row[2].AsInt() >= 1000) all_snapshot = false;
      return true;
    });
    EXPECT_EQ(n, 100);
    EXPECT_TRUE(all_snapshot);  // never sees post-snapshot installs
  }
  stop.store(true);
  writer.join();
}

TEST(MvccTable, PruneVersionsKeepsNewest) {
  MvccTable t(0, KvSchema());
  for (uint64_t ts = 1; ts <= 10; ++ts) {
    EXPECT_TRUE(t.InstallVersion({Value::Int(1)}, ts, false,
                     KvRow(1, "v" + std::to_string(ts), 0)).ok());
  }
  t.PruneVersions(2);
  EXPECT_FALSE(t.Get({Value::Int(1)}, 8).has_value());  // pruned
  EXPECT_EQ(t.Get({Value::Int(1)}, 10)->at(1).AsString(), "v10");
  EXPECT_EQ(t.Get({Value::Int(1)}, 9)->at(1).AsString(), "v9");
}

TEST(MvccTable, ConcurrentReadersAndInstalls) {
  MvccTable t(0, KvSchema());
  TimestampOracle oracle;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      EXPECT_TRUE(t.InstallVersion({Value::Int(i % 64)}, oracle.Advance(), false,
                       KvRow(i % 64, "w", i)).ok());
    }
    stop = true;
  });
  int64_t reads = 0;
  while (!stop.load()) {
    uint64_t ts = oracle.Current();
    t.Scan(ts, [&](const Row&) {
      ++reads;
      return true;
    });
  }
  writer.join();
  EXPECT_GT(reads, 0);
  EXPECT_EQ(t.ApproxRowCount(), 64u);
}

// ------------------------------- LockManager -------------------------------

TEST(LockManager, ExclusiveAndReentrant) {
  LockManager lm;
  Row key = {Value::Int(1)};
  ASSERT_TRUE(lm.Acquire(1, 0, key, 1000).ok());
  ASSERT_TRUE(lm.Acquire(1, 0, key, 1000).ok());  // reentrant
  EXPECT_TRUE(lm.Holds(1, 0, key));
  Status blocked = lm.Acquire(2, 0, key, 1000);
  EXPECT_EQ(blocked.code(), StatusCode::kLockTimeout);
  lm.Release(1, 0, key);
  EXPECT_TRUE(lm.Holds(1, 0, key));  // one release left
  lm.Release(1, 0, key);
  EXPECT_FALSE(lm.Holds(1, 0, key));
  EXPECT_TRUE(lm.Acquire(2, 0, key, 1000).ok());
  lm.Release(2, 0, key);
}

TEST(LockManager, DifferentTablesDoNotConflict) {
  LockManager lm;
  Row key = {Value::Int(1)};
  ASSERT_TRUE(lm.Acquire(1, 0, key, 1000).ok());
  ASSERT_TRUE(lm.Acquire(2, 1, key, 1000).ok());
  lm.Release(1, 0, key);
  lm.Release(2, 1, key);
}

/// Forces every (table_id, key) into one shard-hash value. Before entries
/// were keyed by full identity, colliding hashes shared a single LockEntry:
/// a transaction holding one key got a false reentrant grant on any other
/// key with the same hash, silently breaking mutual exclusion.
size_t CollidingHash(int, const Row&) { return 42; }

TEST(LockManager, CollidingHashesStillGetDistinctLocks) {
  LockManager lm(1, &CollidingHash);
  Row k1 = {Value::Int(1)};
  Row k2 = {Value::Int(2)};
  ASSERT_TRUE(lm.Acquire(1, 0, k1, 1000).ok());
  // Same hash, different key: must be a fresh grant, not contention (and
  // definitely not a shared entry).
  ASSERT_TRUE(lm.Acquire(2, 0, k2, 1000).ok());
  EXPECT_TRUE(lm.Holds(1, 0, k1));
  EXPECT_TRUE(lm.Holds(2, 0, k2));
  EXPECT_FALSE(lm.Holds(1, 0, k2));
  EXPECT_FALSE(lm.Holds(2, 0, k1));
  // Same key across tables collides too and must stay independent.
  ASSERT_TRUE(lm.Acquire(3, 1, k1, 1000).ok());
  EXPECT_EQ(lm.EntryCount(), 3u);
  lm.Release(1, 0, k1);
  lm.Release(2, 0, k2);
  lm.Release(3, 1, k1);
  EXPECT_EQ(lm.EntryCount(), 0u);
}

TEST(LockManager, NoFalseReentrantGrantAcrossCollidingKeys) {
  LockManager lm(1, &CollidingHash);
  Row k1 = {Value::Int(10)};
  Row k2 = {Value::Int(20)};
  // The historical failure: txn 1 held k1; acquiring the colliding k2 hit
  // the shared entry, saw owner == 1, and "reentrantly" granted. Releasing
  // k1 then only decremented the shared reentry count, leaving k1
  // unavailable to others while txn 1 believed it was released.
  ASSERT_TRUE(lm.Acquire(1, 0, k1, 1000).ok());
  ASSERT_TRUE(lm.Acquire(1, 0, k2, 1000).ok());  // fresh entry, reentry=1
  lm.Release(1, 0, k1);
  EXPECT_FALSE(lm.Holds(1, 0, k1));
  EXPECT_TRUE(lm.Holds(1, 0, k2));
  // k1 is genuinely free for another transaction...
  EXPECT_TRUE(lm.Acquire(2, 0, k1, 2000).ok());
  // ...while k2 is still exclusively held.
  EXPECT_EQ(lm.Acquire(2, 0, k2, 2000).code(), StatusCode::kLockTimeout);
  lm.Release(2, 0, k1);
  lm.Release(1, 0, k2);
  EXPECT_EQ(lm.EntryCount(), 0u);
}

TEST(LockManager, WaiterGetsLockOnRelease) {
  LockManager lm;
  Row key = {Value::Int(42)};
  ASSERT_TRUE(lm.Acquire(1, 0, key, 1000).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    Status st = lm.Acquire(2, 0, key, 2000000);
    granted = st.ok();
  });
  SleepMicros(20000);
  EXPECT_FALSE(granted.load());
  lm.Release(1, 0, key);
  waiter.join();
  EXPECT_TRUE(granted.load());
  lm.Release(2, 0, key);
  EXPECT_GE(lm.stats().waits.load(), 1u);
  EXPECT_GT(lm.stats().wait_nanos.load(), 0u);
}

TEST(LockManager, StatsCountTimeouts) {
  LockManager lm;
  Row key = {Value::Int(9)};
  ASSERT_TRUE(lm.Acquire(1, 0, key, 1000).ok());
  EXPECT_FALSE(lm.Acquire(2, 0, key, 2000).ok());
  EXPECT_EQ(lm.stats().timeouts.load(), 1u);
  lm.Release(1, 0, key);
}

TEST(LockManager, HighContentionStress) {
  LockManager lm;
  constexpr int kThreads = 8;
  std::atomic<int> in_critical{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Row key = {Value::Int(5)};
      for (int i = 0; i < 300; ++i) {
        if (!lm.Acquire(100 + t, 0, key, 5000000).ok()) continue;
        if (in_critical.fetch_add(1) != 0) violations++;
        in_critical.fetch_sub(1);
        lm.Release(100 + t, 0, key);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(violations.load(), 0);
}

TEST(LockManager, TimedOutWaitersLeaveNoEntriesBehind) {
  // Regression: a timed-out waiter must never strand a lock-table entry.
  // Release hands an entry with waiters off un-erased; the waiter-exit path
  // in Acquire has to reap it when nobody acquired and nobody else waits,
  // or shard.locks grows for the life of the database under contention.
  LockManager lm(4);
  Row key = {Value::Int(77)};
  ASSERT_TRUE(lm.Acquire(1, 0, key, 1000).ok());
  // Waiter times out while the owner still holds the lock.
  EXPECT_FALSE(lm.Acquire(2, 0, key, 2000).ok());
  EXPECT_EQ(lm.EntryCount(), 1u);  // only the held lock remains
  lm.Release(1, 0, key);
  EXPECT_EQ(lm.EntryCount(), 0u);

  // Waiter blocked when the owner releases: the entry is handed over, then
  // erased by the waiter's own release.
  ASSERT_TRUE(lm.Acquire(3, 0, key, 1000).ok());
  std::thread waiter([&] {
    if (lm.Acquire(4, 0, key, 500000).ok()) lm.Release(4, 0, key);
  });
  SleepMicros(20000);
  lm.Release(3, 0, key);
  waiter.join();
  EXPECT_EQ(lm.EntryCount(), 0u);
}

TEST(LockManager, EntryCountShrinksAfterContentionChurn) {
  // Stress with tiny deadlines so grants, handoffs and timeouts interleave;
  // after every thread quiesces and releases, the lock table must be empty.
  LockManager lm(8);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 400; ++i) {
        Row key = {Value::Int((t + i) % 13)};
        uint64_t txn = 1000 + t;
        if (lm.Acquire(txn, 0, key, (i % 3) * 300).ok()) {
          lm.Release(txn, 0, key);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(lm.EntryCount(), 0u);
}

// ------------------------------ CommitLog/WAL ------------------------------

TEST(CommitLog, FetchRespectsWallClock) {
  CommitLog log;
  CommitRecord r1;
  r1.commit_ts = 1;
  r1.commit_wall_us = 100;
  CommitRecord r2;
  r2.commit_ts = 2;
  r2.commit_wall_us = 200;
  log.Append(r1);
  log.Append(r2);

  std::vector<CommitRecord> out;
  uint64_t next = log.Fetch(0, 150, &out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(next, 1u);
  out.clear();
  next = log.Fetch(next, 300, &out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].commit_ts, 2u);
  EXPECT_EQ(next, 2u);
}

TEST(CommitLog, TrimKeepsSequenceNumbers) {
  CommitLog log;
  for (int i = 0; i < 5; ++i) {
    CommitRecord r;
    r.commit_ts = i + 1;
    r.commit_wall_us = i;
    log.Append(r);
  }
  log.Trim(3);
  std::vector<CommitRecord> out;
  uint64_t next = log.Fetch(0, 1000, &out);  // from_seq below base clamps
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].commit_ts, 4u);
  EXPECT_EQ(next, 5u);
}

// ------------------------------- ColumnStore -------------------------------

TEST(ColumnStore, ApplyUpsertDeleteAndSlotReuse) {
  ColumnTable t(KvSchema());
  LogOp ins;
  ins.kind = LogOp::Kind::kUpsert;
  ins.pk = {Value::Int(1)};
  ins.data = KvRow(1, "a", 10);
  t.Apply(ins);
  EXPECT_EQ(t.LiveRowCount(), 1u);
  EXPECT_EQ(t.Get({Value::Int(1)})->at(1).AsString(), "a");

  ins.data = KvRow(1, "b", 11);
  t.Apply(ins);  // in-place update
  EXPECT_EQ(t.LiveRowCount(), 1u);
  EXPECT_EQ(t.Get({Value::Int(1)})->at(1).AsString(), "b");

  LogOp del;
  del.kind = LogOp::Kind::kDelete;
  del.pk = {Value::Int(1)};
  t.Apply(del);
  EXPECT_EQ(t.LiveRowCount(), 0u);
  EXPECT_FALSE(t.Get({Value::Int(1)}).has_value());
  t.Apply(del);  // idempotent

  LogOp ins2;
  ins2.kind = LogOp::Kind::kUpsert;
  ins2.pk = {Value::Int(2)};
  ins2.data = KvRow(2, "c", 12);
  t.Apply(ins2);  // reuses the freed slot
  int64_t visited = t.Scan([](const Row&) { return true; });
  EXPECT_EQ(visited, 1);
}

TEST(Replicator, ShipsAfterLagAndCatchUp) {
  RowStore rows;
  ColumnStore cols;
  CommitLog log;
  cols.AddTable(0, KvSchema());
  Replicator rep(&log, &cols, /*lag_micros=*/50000, /*poll_micros=*/200);
  rep.Start();

  CommitRecord rec;
  rec.commit_ts = 1;
  rec.commit_wall_us = NowMicros();
  LogOp op;
  op.kind = LogOp::Kind::kUpsert;
  op.table_id = 0;
  op.pk = {Value::Int(1)};
  op.data = KvRow(1, "fresh", 0);
  rec.ops.push_back(op);
  log.Append(rec);

  // Within the lag window the replica must not see the row.
  SleepMicros(5000);
  EXPECT_FALSE(cols.table(0)->Get({Value::Int(1)}).has_value());
  EXPECT_EQ(cols.replicated_ts(), 0u);

  rep.CatchUp();
  EXPECT_TRUE(cols.table(0)->Get({Value::Int(1)}).has_value());
  EXPECT_EQ(cols.replicated_ts(), 1u);
  rep.Stop();
}

TEST(Replicator, EventualVisibilityWithoutCatchUp) {
  ColumnStore cols;
  CommitLog log;
  cols.AddTable(0, KvSchema());
  Replicator rep(&log, &cols, /*lag_micros=*/2000, /*poll_micros=*/200);
  rep.Start();
  CommitRecord rec;
  rec.commit_ts = 7;
  rec.commit_wall_us = NowMicros();
  LogOp op;
  op.kind = LogOp::Kind::kUpsert;
  op.table_id = 0;
  op.pk = {Value::Int(3)};
  op.data = KvRow(3, "x", 0);
  rec.ops.push_back(op);
  log.Append(rec);
  int64_t deadline = NowMicros() + 2000000;
  while (cols.replicated_ts() < 7 && NowMicros() < deadline) {
    SleepMicros(500);
  }
  EXPECT_EQ(cols.replicated_ts(), 7u);
  rep.Stop();
}

TEST(Replicator, StopDrainsRecordsAlreadyDue) {
  // Regression: a record appended while the shipping thread sleeps between
  // polls must not be lost when Stop() flips the flag before the next poll
  // — the stop path performs one final bounded apply of everything already
  // older than the lag.
  ColumnStore cols;
  CommitLog log;
  cols.AddTable(0, KvSchema());
  // Poll far apart so the thread is (almost surely) asleep when we append.
  Replicator rep(&log, &cols, /*lag_micros=*/0, /*poll_micros=*/500000);
  rep.Start();
  SleepMicros(10000);  // let the thread finish its initial apply and sleep

  CommitRecord rec;
  rec.commit_ts = 5;
  rec.commit_wall_us = NowMicros();
  LogOp op;
  op.kind = LogOp::Kind::kUpsert;
  op.table_id = 0;
  op.pk = {Value::Int(9)};
  op.data = KvRow(9, "tail", 1);
  rec.ops.push_back(op);
  log.Append(rec);

  rep.Stop();
  EXPECT_EQ(cols.replicated_ts(), 5u);
  EXPECT_TRUE(cols.table(0)->Get({Value::Int(9)}).has_value());
}

TEST(Replicator, StopKeepsRecordsStillInsideLagWindow) {
  // The stop drain is bounded by the lag: a commit younger than the lag
  // stays invisible (CatchUp is the explicit override).
  ColumnStore cols;
  CommitLog log;
  cols.AddTable(0, KvSchema());
  Replicator rep(&log, &cols, /*lag_micros=*/60000000, /*poll_micros=*/200);
  rep.Start();
  CommitRecord rec;
  rec.commit_ts = 3;
  rec.commit_wall_us = NowMicros();
  LogOp op;
  op.kind = LogOp::Kind::kUpsert;
  op.table_id = 0;
  op.pk = {Value::Int(1)};
  op.data = KvRow(1, "young", 0);
  rec.ops.push_back(op);
  log.Append(rec);
  rep.Stop();
  EXPECT_EQ(cols.replicated_ts(), 0u);
  EXPECT_FALSE(cols.table(0)->Get({Value::Int(1)}).has_value());
}

// --------------------------------- RowStore --------------------------------

TEST(RowStore, CreateAndResolve) {
  RowStore store;
  auto id = store.CreateTable(KvSchema());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*store.TableId("KV"), *id);  // case-insensitive
  EXPECT_FALSE(store.CreateTable(KvSchema()).ok());
  EXPECT_FALSE(store.TableId("nope").ok());
  EXPECT_NE(store.table(*id), nullptr);
  EXPECT_EQ(store.table(99), nullptr);
  EXPECT_EQ(store.num_tables(), 1);
}

}  // namespace
}  // namespace olxp::storage
