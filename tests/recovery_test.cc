#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/database.h"
#include "storage/wal.h"

namespace olxp {
namespace {

namespace fs = std::filesystem;
using engine::Database;
using engine::EngineProfile;
using engine::StoreArchitecture;
using storage::DurabilityMode;

/// Creates (and removes at teardown) per-test WAL directories under the
/// system tmpdir — CI runs these against a tmpdir WAL by construction.
class RecoveryTest : public ::testing::Test {
 protected:
  ~RecoveryTest() override {
    for (const std::string& d : dirs_) {
      std::error_code ec;
      fs::remove_all(d, ec);
    }
  }

  std::string MakeWalDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "olxp_recovery_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* got = mkdtemp(buf.data());
    EXPECT_NE(got, nullptr);
    dirs_.emplace_back(got);
    return dirs_.back();
  }

  /// Simulates an unclean stop: copies the durable on-disk state while the
  /// source database is still running (no clean shutdown ever happens for
  /// the copy) and returns the crash image's path.
  std::string CrashImage(const std::string& wal_dir) {
    std::string img = MakeWalDir();
    for (const auto& entry : fs::directory_iterator(wal_dir)) {
      fs::copy(entry.path(), fs::path(img) / entry.path().filename());
    }
    return img;
  }

  static EngineProfile WalProfile(const std::string& dir, DurabilityMode mode,
                                  bool separated = false) {
    EngineProfile p = separated ? EngineProfile::TiDbLike()
                                : EngineProfile::MemSqlLike();
    p.durability = mode;
    p.wal_dir = dir;
    p.group_commit_window_us = 50;
    p.replication_lag_micros = 0;
    return p;
  }

  /// kv(id INT PK, d DOUBLE, s STRING, ts TIMESTAMP, n INT nullable):
  /// covers every Value type the serializer must round-trip.
  static Status CreateKv(Database& db) {
    storage::TableSchema schema("kv",
                                {{"id", ValueType::kInt, false},
                                 {"d", ValueType::kDouble, true},
                                 {"s", ValueType::kString, true},
                                 {"ts", ValueType::kTimestamp, true},
                                 {"n", ValueType::kInt, true}},
                                {0});
    return db.CreateTableEverywhere(schema);
  }

  static Row KvRow(int64_t id) {
    return {Value::Int(id), Value::Double(id * 0.5),
            Value::String("row-" + std::to_string(id)),
            Value::Timestamp(1700000000000000 + id), Value::Null()};
  }

  static Status CommitKvRows(Database& db, int from, int to) {
    for (int i = from; i < to; ++i) {
      auto t = db.txn_manager().Begin(db.profile().isolation);
      OLXP_RETURN_NOT_OK(t->Insert(*db.TableId("kv"), KvRow(i)));
      OLXP_RETURN_NOT_OK(t->Commit());
    }
    return Status::OK();
  }

  static std::vector<int64_t> KvIds(Database& db) {
    std::vector<int64_t> ids;
    auto t = db.txn_manager().Begin(db.profile().isolation);
    EXPECT_TRUE(t->Scan(*db.TableId("kv"),
                        [&](const Row& row) {
                          ids.push_back(row[0].AsInt());
                          return true;
                        })
                    .ok());
    return ids;
  }

 private:
  std::vector<std::string> dirs_;
};

// ---------------------------------------------------------------------------
// Frame serialization
// ---------------------------------------------------------------------------

TEST(WalFrameCodec, CommitRoundTripAllValueTypes) {
  storage::WalFrame frame;
  frame.type = storage::WalFrame::Type::kCommit;
  frame.seq = 42;
  frame.commit.commit_ts = 7;
  frame.commit.commit_wall_us = 123456789;
  storage::LogOp upsert;
  upsert.kind = storage::LogOp::Kind::kUpsert;
  upsert.table_id = 3;
  upsert.pk = {Value::Int(-9), Value::String("composite")};
  upsert.data = {Value::Int(-9), Value::String("composite"), Value::Null(),
                 Value::Double(2.71828), Value::Timestamp(1234567),
                 Value::String("")};
  storage::LogOp del;
  del.kind = storage::LogOp::Kind::kDelete;
  del.table_id = 3;
  del.pk = {Value::Int(1), Value::String("gone")};
  frame.commit.ops = {upsert, del};

  std::string buf;
  storage::EncodeFrame(frame, &buf);
  size_t offset = 0;
  storage::WalFrame decoded;
  ASSERT_TRUE(storage::DecodeFrame(buf, &offset, &decoded));
  EXPECT_EQ(offset, buf.size());
  EXPECT_EQ(decoded.seq, 42u);
  EXPECT_EQ(decoded.commit.commit_ts, 7u);
  EXPECT_EQ(decoded.commit.commit_wall_us, 123456789);
  ASSERT_EQ(decoded.commit.ops.size(), 2u);
  const storage::LogOp& u = decoded.commit.ops[0];
  EXPECT_EQ(u.kind, storage::LogOp::Kind::kUpsert);
  EXPECT_EQ(u.table_id, 3);
  ASSERT_EQ(u.data.size(), 6u);
  EXPECT_EQ(u.data[0], Value::Int(-9));
  EXPECT_EQ(u.data[1], Value::String("composite"));
  EXPECT_TRUE(u.data[2].is_null());
  EXPECT_EQ(u.data[3], Value::Double(2.71828));
  EXPECT_EQ(u.data[4].type(), ValueType::kTimestamp);
  EXPECT_EQ(u.data[4].AsInt(), 1234567);
  EXPECT_EQ(u.data[5], Value::String(""));
  EXPECT_EQ(decoded.commit.ops[1].kind, storage::LogOp::Kind::kDelete);
  EXPECT_TRUE(decoded.commit.ops[1].data.empty());
}

TEST(WalFrameCodec, CorruptionAndTruncationRejected) {
  storage::WalFrame frame;
  frame.type = storage::WalFrame::Type::kCommit;
  frame.seq = 1;
  frame.commit.commit_ts = 1;
  storage::LogOp op;
  op.table_id = 0;
  op.pk = {Value::Int(5)};
  op.data = {Value::Int(5), Value::String("x")};
  frame.commit.ops = {op};
  std::string buf;
  storage::EncodeFrame(frame, &buf);

  // Flip one payload byte: CRC must reject.
  std::string corrupt = buf;
  corrupt[buf.size() - 1] ^= 0x40;
  size_t offset = 0;
  storage::WalFrame out;
  EXPECT_FALSE(storage::DecodeFrame(corrupt, &offset, &out));
  EXPECT_EQ(offset, 0u);

  // Every strict prefix is a torn record.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string torn = buf.substr(0, cut);
    offset = 0;
    EXPECT_FALSE(storage::DecodeFrame(torn, &offset, &out)) << cut;
  }
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

TEST_F(RecoveryTest, CommittedTransactionsSurviveUncleanStop) {
  std::string dir = MakeWalDir();
  std::string image;
  {
    Database db(WalProfile(dir, DurabilityMode::kGroup));
    ASSERT_TRUE(db.recovery_status().ok());
    ASSERT_TRUE(CreateKv(db).ok());
    ASSERT_TRUE(CommitKvRows(db, 0, 50).ok());
    // Commit returned => fsync covered these records; the copy taken now is
    // exactly what a kill -9 would leave behind.
    image = CrashImage(dir);
  }
  Database recovered(WalProfile(image, DurabilityMode::kGroup));
  ASSERT_TRUE(recovered.recovery_status().ok());
  std::vector<int64_t> ids = KvIds(recovered);
  ASSERT_EQ(ids.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ids[i], i);

  // Full value fidelity, not just presence.
  auto t = recovered.txn_manager().Begin(recovered.profile().isolation);
  auto got = t->Get(*recovered.TableId("kv"), {Value::Int(7)});
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, KvRow(7));
}

TEST_F(RecoveryTest, UncommittedWritesNeverAppear) {
  std::string dir = MakeWalDir();
  std::string image;
  {
    Database db(WalProfile(dir, DurabilityMode::kGroup));
    ASSERT_TRUE(CreateKv(db).ok());
    ASSERT_TRUE(CommitKvRows(db, 0, 10).ok());
    // An open transaction with buffered writes at "crash" time.
    auto open_txn = db.txn_manager().Begin(db.profile().isolation);
    ASSERT_TRUE(open_txn->Insert(*db.TableId("kv"), KvRow(100)).ok());
    ASSERT_TRUE(open_txn->Insert(*db.TableId("kv"), KvRow(101)).ok());
    image = CrashImage(dir);
    (void)open_txn->Abort();
  }
  Database recovered(WalProfile(image, DurabilityMode::kGroup));
  ASSERT_TRUE(recovered.recovery_status().ok());
  std::vector<int64_t> ids = KvIds(recovered);
  EXPECT_EQ(ids.size(), 10u);
  for (int64_t id : ids) EXPECT_LT(id, 100);
}

TEST_F(RecoveryTest, UpdatesAndDeletesReplayInOrder) {
  std::string dir = MakeWalDir();
  std::string image;
  {
    Database db(WalProfile(dir, DurabilityMode::kGroup));
    ASSERT_TRUE(CreateKv(db).ok());
    ASSERT_TRUE(CommitKvRows(db, 0, 5).ok());
    int kv = *db.TableId("kv");
    {
      auto t = db.txn_manager().Begin(db.profile().isolation);
      Row updated = KvRow(2);
      updated[2] = Value::String("updated");
      ASSERT_TRUE(t->Update(kv, updated).ok());
      ASSERT_TRUE(t->Delete(kv, {Value::Int(3)}).ok());
      ASSERT_TRUE(t->Commit().ok());
    }
    image = CrashImage(dir);
  }
  Database recovered(WalProfile(image, DurabilityMode::kGroup));
  ASSERT_TRUE(recovered.recovery_status().ok());
  auto t = recovered.txn_manager().Begin(recovered.profile().isolation);
  int kv = *recovered.TableId("kv");
  auto updated = t->Get(kv, {Value::Int(2)});
  ASSERT_TRUE(updated.ok() && updated->has_value());
  EXPECT_EQ((**updated)[2], Value::String("updated"));
  auto deleted = t->Get(kv, {Value::Int(3)});
  ASSERT_TRUE(deleted.ok());
  EXPECT_FALSE(deleted->has_value());
}

TEST_F(RecoveryTest, TornTailIsSkippedIntactPrefixSurvives) {
  std::string dir = MakeWalDir();
  std::string image;
  {
    Database db(WalProfile(dir, DurabilityMode::kGroup));
    ASSERT_TRUE(CreateKv(db).ok());
    ASSERT_TRUE(CommitKvRows(db, 0, 20).ok());
    image = CrashImage(dir);
  }
  // A crash mid-write leaves a partial record at the newest segment's tail.
  std::vector<std::pair<uint64_t, fs::path>> segments;
  for (const auto& entry : fs::directory_iterator(image)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) {
      segments.emplace_back(std::strtoull(name.c_str() + 4, nullptr, 10),
                            entry.path());
    }
  }
  ASSERT_FALSE(segments.empty());
  fs::path newest = std::max_element(segments.begin(), segments.end())->second;
  {
    std::ofstream out(newest, std::ios::binary | std::ios::app);
    const char torn[] = "\x50\x00\x00\x00garbage-that-is-not-a-frame";
    out.write(torn, sizeof torn - 1);
  }
  Database recovered(WalProfile(image, DurabilityMode::kGroup));
  ASSERT_TRUE(recovered.recovery_status().ok());
  EXPECT_EQ(KvIds(recovered).size(), 20u);
  // The recovered database keeps working: new commits land durably after
  // the torn tail (a fresh segment, never an append to the damaged one).
  ASSERT_TRUE(CommitKvRows(recovered, 20, 25).ok());
  EXPECT_EQ(KvIds(recovered).size(), 25u);
}

TEST_F(RecoveryTest, TornFirstFrameSegmentIsDiscardedNotAppendedTo) {
  // A crash mid-write of a segment's FIRST frame leaves a file with no
  // decodable prefix. The writer must not append acked commits behind that
  // junk (they would vanish at the next replay) — it truncates the file.
  std::string dir = MakeWalDir();
  uint64_t next_seq = 0;
  {
    Database db(WalProfile(dir, DurabilityMode::kGroup));
    ASSERT_TRUE(CreateKv(db).ok());
    ASSERT_TRUE(CommitKvRows(db, 0, 10).ok());
    ASSERT_NE(db.wal(), nullptr);
    next_seq = db.wal()->next_seq();
  }
  char name[48];
  std::snprintf(name, sizeof name, "wal-%020llu.seg",
                static_cast<unsigned long long>(next_seq));
  {
    std::ofstream out(fs::path(dir) / name, std::ios::binary);
    out << "\x60\x00\x00\x00torn-first-frame-of-a-fresh-segment";
  }
  {
    Database recovered(WalProfile(dir, DurabilityMode::kGroup));
    ASSERT_TRUE(recovered.recovery_status().ok());
    EXPECT_EQ(KvIds(recovered).size(), 10u);
    ASSERT_TRUE(CommitKvRows(recovered, 10, 15).ok());
  }
  // The commits acked after the first recovery must survive a second one.
  Database again(WalProfile(dir, DurabilityMode::kGroup));
  ASSERT_TRUE(again.recovery_status().ok());
  EXPECT_EQ(KvIds(again).size(), 15u);
}

TEST_F(RecoveryTest, OracleReseededCommitsContinueAfterRecovery) {
  std::string dir = MakeWalDir();
  std::string image;
  uint64_t last_ts = 0;
  {
    Database db(WalProfile(dir, DurabilityMode::kGroup));
    ASSERT_TRUE(CreateKv(db).ok());
    ASSERT_TRUE(CommitKvRows(db, 0, 8).ok());
    last_ts = db.row_store().table(*db.TableId("kv"))
                  ->LatestCommitTs({Value::Int(7)});
    ASSERT_GT(last_ts, 0u);
    image = CrashImage(dir);
  }
  Database recovered(WalProfile(image, DurabilityMode::kGroup));
  ASSERT_TRUE(recovered.recovery_status().ok());
  int kv = *recovered.TableId("kv");
  // Original commit timestamps are preserved by replay...
  EXPECT_EQ(recovered.row_store().table(kv)->LatestCommitTs({Value::Int(7)}),
            last_ts);
  // ...and new commits allocate strictly beyond them.
  ASSERT_TRUE(CommitKvRows(recovered, 8, 9).ok());
  EXPECT_GT(recovered.row_store().table(kv)->LatestCommitTs({Value::Int(8)}),
            last_ts);
}

TEST_F(RecoveryTest, SecondaryIndexesRecoverviaDdlReplay) {
  std::string dir = MakeWalDir();
  std::string image;
  {
    Database db(WalProfile(dir, DurabilityMode::kGroup));
    ASSERT_TRUE(CreateKv(db).ok());
    ASSERT_TRUE(db.CreateIndexOn("kv", {"kv_by_s", {2}, false}).ok());
    ASSERT_TRUE(CommitKvRows(db, 0, 10).ok());
    image = CrashImage(dir);
  }
  Database recovered(WalProfile(image, DurabilityMode::kGroup));
  ASSERT_TRUE(recovered.recovery_status().ok());
  auto t = recovered.txn_manager().Begin(recovered.profile().isolation);
  std::vector<Row> hits;
  ASSERT_TRUE(t->IndexLookup(*recovered.TableId("kv"), 0,
                             {Value::String("row-4")}, &hits)
                  .ok());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0][0].AsInt(), 4);
}

TEST_F(RecoveryTest, ReplicaParityAfterRebuild) {
  std::string dir = MakeWalDir();
  std::string image;
  {
    Database db(WalProfile(dir, DurabilityMode::kGroup, /*separated=*/true));
    ASSERT_TRUE(db.recovery_status().ok());
    ASSERT_TRUE(CreateKv(db).ok());
    ASSERT_TRUE(CommitKvRows(db, 0, 40).ok());
    {
      auto t = db.txn_manager().Begin(db.profile().isolation);
      ASSERT_TRUE(t->Delete(*db.TableId("kv"), {Value::Int(11)}).ok());
      ASSERT_TRUE(t->Commit().ok());
    }
    image = CrashImage(dir);
  }
  Database recovered(
      WalProfile(image, DurabilityMode::kGroup, /*separated=*/true));
  ASSERT_TRUE(recovered.recovery_status().ok());
  recovered.WaitReplicaCaughtUp();
  int kv = *recovered.TableId("kv");
  const storage::ColumnTable* replica = recovered.column_store().table(kv);
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(replica->LiveRowCount(), 39u);
  // Row-by-row parity between the recovered row store and the replica.
  auto t = recovered.txn_manager().Begin(recovered.profile().isolation);
  int64_t checked = 0;
  ASSERT_TRUE(t->Scan(kv,
                      [&](const Row& row) {
                        auto col = replica->Get({row[0]});
                        EXPECT_TRUE(col.has_value());
                        if (col.has_value()) EXPECT_EQ(*col, row);
                        ++checked;
                        return true;
                      })
                  .ok());
  EXPECT_EQ(checked, 39);
  EXPECT_FALSE(replica->Get({Value::Int(11)}).has_value());
}

TEST_F(RecoveryTest, CheckpointTrimsSegmentsAndRestartUsesIt) {
  std::string dir = MakeWalDir();
  auto count_segments = [&] {
    size_t n = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().filename().string().rfind("wal-", 0) == 0) ++n;
    }
    return n;
  };
  {
    EngineProfile p = WalProfile(dir, DurabilityMode::kGroup);
    p.wal_segment_bytes = 2048;  // force frequent rotation
    Database db(p);
    ASSERT_TRUE(CreateKv(db).ok());
    ASSERT_TRUE(CommitKvRows(db, 0, 200).ok());
    size_t before = count_segments();
    ASSERT_GT(before, 3u);
    ASSERT_TRUE(db.Checkpoint().ok());
    size_t after = count_segments();
    EXPECT_LT(after, before);
    // Post-checkpoint commits land in the surviving segments.
    ASSERT_TRUE(CommitKvRows(db, 200, 230).ok());
  }
  EngineProfile p = WalProfile(dir, DurabilityMode::kGroup);
  p.wal_segment_bytes = 2048;
  Database recovered(p);
  ASSERT_TRUE(recovered.recovery_status().ok());
  std::vector<int64_t> ids = KvIds(recovered);
  ASSERT_EQ(ids.size(), 230u);
  auto t = recovered.txn_manager().Begin(recovered.profile().isolation);
  auto got = t->Get(*recovered.TableId("kv"), {Value::Int(123)});
  ASSERT_TRUE(got.ok() && got->has_value());
  EXPECT_EQ(**got, KvRow(123));
}

TEST_F(RecoveryTest, CheckpointWithoutDurabilityFails) {
  Database db(EngineProfile::MemSqlLike());
  EXPECT_EQ(db.Checkpoint().code(), StatusCode::kInvalidArgument);
}

TEST_F(RecoveryTest, SyncModeRoundTrips) {
  std::string dir = MakeWalDir();
  std::string image;
  {
    Database db(WalProfile(dir, DurabilityMode::kSync));
    ASSERT_TRUE(CreateKv(db).ok());
    ASSERT_TRUE(CommitKvRows(db, 0, 10).ok());
    image = CrashImage(dir);
  }
  Database recovered(WalProfile(image, DurabilityMode::kSync));
  ASSERT_TRUE(recovered.recovery_status().ok());
  EXPECT_EQ(KvIds(recovered).size(), 10u);
}

TEST_F(RecoveryTest, AsyncModeRoundTripsAfterCleanClose) {
  std::string dir = MakeWalDir();
  {
    Database db(WalProfile(dir, DurabilityMode::kAsync));
    ASSERT_TRUE(CreateKv(db).ok());
    ASSERT_TRUE(CommitKvRows(db, 0, 30).ok());
    // Async acks before the write: durability is only promised at clean
    // shutdown (the writer flushes on close) or on an explicit flush.
  }
  Database recovered(WalProfile(dir, DurabilityMode::kAsync));
  ASSERT_TRUE(recovered.recovery_status().ok());
  EXPECT_EQ(KvIds(recovered).size(), 30u);
}

TEST_F(RecoveryTest, EmptyDirectoryIsAFreshDatabase) {
  std::string dir = MakeWalDir();
  Database db(WalProfile(dir, DurabilityMode::kGroup));
  ASSERT_TRUE(db.recovery_status().ok());
  EXPECT_FALSE(db.TableId("kv").ok());
  ASSERT_TRUE(CreateKv(db).ok());
  ASSERT_TRUE(CommitKvRows(db, 0, 3).ok());
  EXPECT_EQ(KvIds(db).size(), 3u);
}

}  // namespace
}  // namespace olxp
