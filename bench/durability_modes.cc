// Durability figure: throughput of the four WAL modes (off / async /
// per-commit fsync / group commit) on subench write-heavy cells. The
// paper's SUTs all persist commits through a group-committed raft/redo log;
// this figure shows why — a naive fsync per commit caps throughput at
// 1/fsync_latency, while one fsync covering a batch restores most of the
// non-durable rate. Acceptance target: group >= 5x sync on the write-heavy
// cell.
//
// The engine profile zeroes the simulated latency model so the figure
// isolates REAL durability cost (write + fsync on this machine's disk)
// instead of burying it under simulated device charges.
#include <unistd.h>

#include <cstdlib>
#include <filesystem>

#include "bench/bench_common.h"

namespace olxp::bench {
namespace {

namespace fs = std::filesystem;

engine::EngineProfile DurabilityProfile(storage::DurabilityMode mode,
                                        const std::string& wal_dir) {
  engine::EngineProfile p = engine::EngineProfile::MemSqlLike();
  // Zero the simulated device model: the figure measures the durability
  // axis alone, as hardware allows.
  p.latency = engine::LatencyModel{};
  p.latency.row_seek_ns = 0;
  p.latency.row_scan_row_ns = 0;
  p.latency.row_analytic_scan_row_ns = 0;
  p.latency.col_scan_row_ns = 0;
  p.latency.write_ns = 0;
  p.latency.commit_base_ns = 0;
  p.latency.statement_overhead_ns = 0;
  p.latency.scan_contention = 0;
  p.durability = mode;
  p.wal_dir = wal_dir;
  // Window 0 still batches: everything arriving while the previous fsync
  // runs shares the next one. On a small host the fsync itself is a long
  // enough window; a positive value only adds latency here.
  p.group_commit_window_us = 0;
  return p;
}

/// Single-statement auto-commit append to subench HISTORY (the Payment
/// sub-op): the leanest write the engine serves — short row, no prior
/// version to read, conflict-free keys — so durability cost dominates.
/// h_date comes from a shared counter: the composite PK stays unique
/// across all writer threads.
benchfw::TxnProfile HistoryInsertProfile(int warehouses) {
  benchfw::TxnProfile p;
  p.name = "HistoryInsert";
  p.weight = 1;
  p.read_only = false;
  auto date_seq = std::make_shared<std::atomic<int64_t>>(1800000000000000);
  p.body = [warehouses, date_seq](engine::Session& s, Rng& r) {
    const int64_t w = r.Uniform(int64_t{1}, int64_t{warehouses});
    auto rs = s.Execute(
        "INSERT INTO history VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        {Value::Int(r.Uniform(int64_t{1}, int64_t{30})),
         Value::Int(r.Uniform(int64_t{1}, int64_t{10})), Value::Int(w),
         Value::Int(r.Uniform(int64_t{1}, int64_t{10})), Value::Int(w),
         Value::Timestamp(date_seq->fetch_add(1)), Value::Double(3.14),
         Value::String("durability-cell")});
    return rs.ok() ? Status::OK() : rs.status();
  };
  return p;
}

struct ModeResult {
  double tput = 0;
  double mean_ms = 0;
  double p95_ms = 0;
  uint64_t fsyncs = 0;
  uint64_t wal_mb = 0;
};

}  // namespace
}  // namespace olxp::bench

int main(int argc, char** argv) {
  using namespace olxp;
  using namespace olxp::bench;

  // Local flag on top of the shared options: worker thread count. High by
  // default: group commit's batch size is bounded by the number of
  // concurrently committing clients.
  int threads = 96;
  int argc_out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else {
      argv[argc_out++] = argv[i];
    }
  }
  BenchOptions opts = BenchOptions::Parse(argc_out, argv);
  // Keep the write key space wide enough that row-lock collisions between
  // the many writer threads stay rare — the figure measures durability
  // cost, not lock contention.
  if (opts.items < 10000) opts.items = 10000;
  PrintHeader(
      "Durability: WAL mode sweep (subench write-heavy cells)",
      "group commit amortizes the redo-log fsync across concurrent commits "
      "(target: >= 5x per-commit fsync)");

  const storage::DurabilityMode kModes[] = {
      storage::DurabilityMode::kOff, storage::DurabilityMode::kAsync,
      storage::DurabilityMode::kSync, storage::DurabilityMode::kGroup};

  struct CellSpec {
    const char* label;
    bool lean_cell;  ///< lean auto-commit history append vs Payment-only mix
  };
  // The Payment row keeps the standard subench OLTP path in view; the
  // history-insert row is the lean cell the acceptance ratio is read from.
  const CellSpec kCells[] = {{"history-insert", true}, {"payment-only", false}};

  benchfw::BenchJsonReport report("durability");
  report.AddConfig("quick", opts.quick);
  report.AddConfig("measure_seconds", opts.measure);
  report.AddConfig("threads", static_cast<double>(threads));
  report.AddConfig("items", static_cast<double>(opts.items));
  report.AddConfig("seed", static_cast<double>(opts.seed));

  for (const CellSpec& cell : kCells) {
    std::printf("\n--- cell: %s (closed loop, %d threads) ---\n", cell.label,
                threads);
    std::printf("%-8s %12s %10s %10s %10s %8s\n", "mode", "tput(txn/s)",
                "mean_ms", "p95_ms", "fsync/s", "wal_MB");

    double sync_tput = 0, group_tput = 0;
    for (storage::DurabilityMode mode : kModes) {
      // Best of two independent reps per mode (fresh database + WAL dir
      // each): peak-throughput methodology, applied symmetrically, so one
      // cold ext4 journal or scheduler hiccup does not define a mode.
      const int kReps = 2;
      ModeResult best;
      LatencyHistogram best_hist;
      uint64_t best_committed = 0;
      double best_seconds = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        std::string tmpl =
            (std::filesystem::temp_directory_path() / "olxp_dur_XXXXXX")
                .string();
        std::vector<char> dirbuf(tmpl.begin(), tmpl.end());
        dirbuf.push_back('\0');
        if (mkdtemp(dirbuf.data()) == nullptr) {
          std::fprintf(stderr, "mkdtemp failed\n");
          return 1;
        }
        const std::string wal_dir = dirbuf.data();

        benchfw::BenchmarkSuite suite =
            benchmarks::MakeSubenchmark(opts.Load());
        const int warehouses = suite.load_params.scale;
        if (cell.lean_cell) {
          suite.transactions = {HistoryInsertProfile(warehouses)};
        }
        engine::Database db(DurabilityProfile(mode, wal_dir));
        if (!db.recovery_status().ok()) {
          std::fprintf(stderr, "wal open failed: %s\n",
                       db.recovery_status().ToString().c_str());
          return 1;
        }
        if (!benchfw::SetUp(db, suite).ok()) return 1;

        benchfw::AgentConfig oltp;
        oltp.kind = benchfw::AgentKind::kOltp;
        oltp.request_rate = -1;  // closed loop: saturation throughput
        oltp.threads = threads;
        if (!cell.lean_cell) {
          // Payment only, via the (validated) per-profile weight override.
          oltp.weight_override = {0, 1, 0, 0, 0};
        }

        benchfw::RunConfig cfg = opts.Run();
        uint64_t fsync0 = db.wal() != nullptr ? db.wal()->fsync_count() : 0;
        uint64_t bytes0 = db.wal() != nullptr ? db.wal()->bytes_written() : 0;
        auto r = Cell(db, suite, {oltp}, cfg);
        const auto& k = r.Of(benchfw::AgentKind::kOltp);

        ModeResult m;
        m.tput = k.Throughput(r.measure_seconds);
        m.mean_ms = k.latency.Mean() / 1000.0;
        m.p95_ms = k.latency.P95() / 1000.0;
        if (db.wal() != nullptr) {
          // Cell-wide counters (warmup included): rough rate, right shape.
          m.fsyncs = db.wal()->fsync_count() - fsync0;
          m.wal_mb = (db.wal()->bytes_written() - bytes0) >> 20;
        }
        if (m.tput > best.tput) {
          best = m;
          best_hist = k.latency;
          best_committed = k.committed;
          best_seconds = r.measure_seconds;
        }

        std::error_code ec;
        std::filesystem::remove_all(wal_dir, ec);
      }

      std::printf("%-8s %12.1f %10.3f %10.3f %10.1f %8llu\n",
                  storage::DurabilityModeName(mode), best.tput, best.mean_ms,
                  best.p95_ms,
                  opts.measure > 0 ? best.fsyncs / opts.measure : 0,
                  static_cast<unsigned long long>(best.wal_mb));
      std::fflush(stdout);

      if (mode == storage::DurabilityMode::kSync) sync_tput = best.tput;
      if (mode == storage::DurabilityMode::kGroup) group_tput = best.tput;

      const std::string label =
          std::string(cell.label) + "/" + storage::DurabilityModeName(mode);
      report.AddLatencyCell(label, best_hist, best_committed, best_seconds);
      report.AddMetric(label, "fsyncs", static_cast<double>(best.fsyncs));
      report.AddMetric(label, "wal_mb", static_cast<double>(best.wal_mb));
    }

    if (sync_tput > 0) {
      std::printf("[%s] group/sync = %.2fx %s\n", cell.label,
                  group_tput / sync_tput,
                  cell.lean_cell ? "(acceptance target: >= 5x)" : "");
      report.AddMetric(cell.label, "group_over_sync",
                       sync_tput > 0 ? group_tput / sync_tput : 0);
    }
  }
  report.Write();
  return 0;
}
