// Sustained-run memory boundedness under the background MVCC vacuum: the
// acceptance scenario for the snapshot-watermark vacuum subsystem.
//
// Phase 1 runs back-to-back subenchmark cells (updates, inserts AND the
// new_order deletes) with NO between-cell pruning — only the background
// vacuum thread runs. Version-chain totals, secondary-index entries, and
// resident row counts must plateau instead of growing with every cell.
//
// Phase 2 pins an old snapshot (an open snapshot-isolation transaction)
// and keeps the load running: reclamation stalls at the pin (version
// totals grow again), then collapses back once the snapshot is released —
// the watermark rule made observable.
#include "bench/bench_common.h"

namespace olxp::bench {
namespace {

struct StorageFootprint {
  size_t versions = 0;
  size_t index_entries = 0;
  size_t rows = 0;
};

StorageFootprint Footprint(engine::Database& db) {
  StorageFootprint f;
  for (int id : db.row_store().TableIds()) {
    const storage::MvccTable* t = db.row_store().table(id);
    f.versions += t->TotalVersionCount();
    f.index_entries += t->IndexEntryCount();
    f.rows += t->ApproxRowCount();
  }
  return f;
}

int Main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  PrintHeader("Sustained-run MVCC vacuum (subenchmark, tidb-like)",
              "bounded version/index growth under continuous GC; a pinned "
              "snapshot blocks reclamation until released");

  benchfw::BenchmarkSuite suite = benchmarks::MakeSubenchmark(opts.Load());
  engine::Database db(engine::EngineProfile::TiDbLike());
  Status st = benchfw::SetUp(db, suite);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  benchfw::AgentConfig oltp;
  oltp.kind = benchfw::AgentKind::kOltp;
  oltp.request_rate = -1;  // closed loop, full default mix (incl. deletes)
  oltp.threads = 8;

  auto run_cell = [&]() {
    auto result = benchfw::RunCell(db, suite, {oltp}, opts.Run());
    if (!result.ok()) {
      std::fprintf(stderr, "cell failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return *std::move(result);
  };

  const StorageFootprint loaded = Footprint(db);
  std::printf("after load:   versions=%zu index_entries=%zu rows=%zu\n",
              loaded.versions, loaded.index_entries, loaded.rows);

  // ---- Phase 1: continuous load, background vacuum only -------------------
  const int cells = opts.quick ? 3 : 5;
  StorageFootprint prev = loaded;
  size_t peak_versions = loaded.versions;
  double last_growth = 0;
  for (int c = 0; c < cells; ++c) {
    run_cell();
    db.RunVacuum();  // drain the tail so samples compare settled states
    StorageFootprint f = Footprint(db);
    last_growth = prev.versions > 0
                      ? static_cast<double>(f.versions) /
                            static_cast<double>(prev.versions)
                      : 0;
    std::printf(
        "cell %d:       versions=%zu index_entries=%zu rows=%zu "
        "(x%.3f vs prev)\n",
        c, f.versions, f.index_entries, f.rows, last_growth);
    peak_versions = std::max(peak_versions, f.versions);
    prev = f;
  }
  auto totals = db.vacuum().Totals();
  std::printf(
      "vacuum: passes=%llu reclaimed versions=%llu chains=%llu "
      "index_entries=%llu\n",
      static_cast<unsigned long long>(db.vacuum().passes()),
      static_cast<unsigned long long>(totals.versions_removed),
      static_cast<unsigned long long>(totals.chains_removed),
      static_cast<unsigned long long>(totals.index_entries_removed));
  // Plateau: the last cell's settled footprint stays within a small factor
  // of the previous one (unbounded growth compounds per cell instead).
  const bool plateaued = last_growth > 0 && last_growth < 1.25;
  std::printf("%s\n",
              benchfw::FigureRow("vacuum", 0, "settled_growth_factor",
                                 last_growth)
                  .c_str());

  // ---- Phase 2: pinned snapshot blocks reclamation ------------------------
  auto pin = db.txn_manager().Begin(txn::IsolationLevel::kSnapshotIsolation);
  const StorageFootprint before_pin = prev;
  run_cell();
  db.RunVacuum();
  StorageFootprint pinned = Footprint(db);
  // Reclamation is stalled at the pin: history written after it survives.
  std::printf("pinned:       versions=%zu (was %zu) — reclamation blocked\n",
              pinned.versions, before_pin.versions);
  const bool pin_blocked = pinned.versions > before_pin.versions;
  (void)pin->Commit();  // release the snapshot; a read-only commit can't fail
  db.RunVacuum();
  StorageFootprint released = Footprint(db);
  std::printf("released:     versions=%zu — watermark advanced past pin\n",
              released.versions);
  const bool pin_released = released.versions < pinned.versions;

  std::printf("\nbounded under continuous vacuum: %s\n",
              plateaued ? "yes" : "NO");
  std::printf("pinned snapshot blocked reclamation: %s\n",
              pin_blocked ? "yes" : "NO");
  std::printf("release unblocked reclamation:       %s\n",
              pin_released ? "yes" : "NO");
  return plateaued && pin_blocked && pin_released ? 0 : 1;
}

}  // namespace
}  // namespace olxp::bench

int main(int argc, char** argv) { return olxp::bench::Main(argc, argv); }
