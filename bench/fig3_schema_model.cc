// Reproduces Figure 3 (Test Case 1): semantically consistent schema
// (subenchmark) versus stitched schema (CH-benCHmark) under varied OLAP
// pressure on the TiDB-like engine. Following the paper, the OLTP side
// drops the write-heavy NewOrder/Payment to avoid load imbalance and runs
// at a fixed rate (constant L by Little's law); OLAP threads each send one
// query per second. Latencies are normalized to each benchmark's own
// zero-OLAP baseline.
//
// Paper: OLxPBench normalized latency >2x with 1 OLAP thread and >3x with
// 2; CH-benCHmark stays below ~1.2x and ~1.48x.
#include "bench/bench_common.h"

namespace olxp::bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  // Low-rate OLAP agents (~1 qps) need a long window to engage
  // statistically (the paper ran 240 s); --measure overrides.
  if (!opts.quick && opts.measure < 6.0) opts.measure = 6.0;
  PrintHeader("Figure 3: schema model comparison (tidb-like)",
              "semantically consistent schema reveals >2x/>3x interference; "
              "stitched stays ~1.2x/~1.5x");

  struct Case {
    const char* label;
    benchfw::BenchmarkSuite suite;
  };
  std::vector<Case> cases;
  cases.push_back({"olxp(subench)", benchmarks::MakeSubenchmark(opts.Load())});
  cases.push_back({"ch-benchmark", benchmarks::MakeChBenchmark(opts.Load())});

  // Constant L via a fixed closed-loop client population (Little's law:
  // with N clients in the system, L is pinned regardless of service rate).
  const int oltp_threads = 8;
  const int max_olap_threads = 2;

  std::printf("%-15s", "benchmark");
  for (int n = 0; n <= max_olap_threads; ++n) {
    std::printf("  olap=%d(ms)  norm", n);
  }
  std::printf("\n");

  for (Case& c : cases) {
    engine::Database db(engine::EngineProfile::TiDbLike());
    Status st = benchfw::SetUp(db, c.suite);
    if (!st.ok()) {
      std::fprintf(stderr, "setup %s failed: %s\n", c.label,
                   st.ToString().c_str());
      return 1;
    }
    // Read-mostly OLTP mix (NewOrder/Payment dropped, as in the paper).
    benchfw::AgentConfig oltp;
    oltp.kind = benchfw::AgentKind::kOltp;
    oltp.request_rate = -1;  // closed loop: constant L
    oltp.threads = oltp_threads;
    oltp.weight_override = {0, 0, 1, 1, 1};

    std::printf("%-15s", c.label);
    double baseline_ms = 0;
    for (int n = 0; n <= max_olap_threads; ++n) {
      std::vector<benchfw::AgentConfig> agents = {oltp};
      if (n > 0) {
        benchfw::AgentConfig olap;
        olap.kind = benchfw::AgentKind::kOlap;
        olap.request_rate = n;  // 1 query/s per OLAP thread
        olap.threads = n;
        agents.push_back(olap);
      }
      auto result = Cell(db, c.suite, agents, opts.Run());
      double ms =
          result.Of(benchfw::AgentKind::kOltp).latency.Mean() / 1000.0;
      if (n == 0) baseline_ms = ms;
      double norm = baseline_ms > 0 ? ms / baseline_ms : 0;
      std::printf("  %9.2f  %5.2f", ms, norm);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace olxp::bench

int main(int argc, char** argv) { return olxp::bench::Main(argc, argv); }
