#ifndef OLXP_BENCH_SWEEP_COMMON_H_
#define OLXP_BENCH_SWEEP_COMMON_H_

#include <functional>
#include <vector>

#include "bench/bench_common.h"

namespace olxp::bench {

/// Shared machinery for Figures 7/8/9: per engine profile it
///   (a) discovers the peak OLTP/OLAP/OLxP throughput closed-loop,
///   (b) sweeps transactional rates against analytical rates (subfigures a
///       and b come from the same grid),
///   (c) sweeps hybrid (OLxP) rates,
/// printing the paper's series. The two engines' grids use their own peaks
/// (the paper's axes also differ per system).
struct SweepSpec {
  const char* figure;          ///< "fig7" etc.
  const char* benchmark_name;  ///< for headers
  std::function<benchfw::BenchmarkSuite(benchfw::LoadParams)> make_suite;
  int oltp_threads = 16;
  int olap_threads = 4;
  int hybrid_threads = 8;
  int min_scale = 0;  ///< raise opts.scale to at least this
};

inline double DiscoverPeak(engine::Database& db,
                           const benchfw::BenchmarkSuite& suite,
                           benchfw::AgentKind kind, int threads,
                           const benchfw::RunConfig& cfg) {
  benchfw::AgentConfig agent;
  agent.kind = kind;
  agent.request_rate = -1;  // closed loop
  agent.threads = threads;
  auto result = Cell(db, suite, {agent}, cfg);
  return result.Of(kind).Throughput(result.measure_seconds);
}

inline int RunSweep(const SweepSpec& spec, int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  if (opts.scale < spec.min_scale) opts.scale = spec.min_scale;
  PrintHeader(StrFormat("%s: OLTP/OLAP/OLxP sweeps (%s)", spec.figure,
                        spec.benchmark_name)
                  .c_str(),
              "memsql-like peak OLTP ~3x tidb-like; tidb-like handles OLxP "
              "better; mutual OLTP/OLAP interference up to ~89%/~59%");

  const std::vector<engine::EngineProfile> profiles = {
      engine::EngineProfile::MemSqlLike(), engine::EngineProfile::TiDbLike()};
  const std::vector<double> txn_fracs =
      opts.quick ? std::vector<double>{0, 0.5, 1.0}
                 : std::vector<double>{0, 0.25, 0.5, 0.75, 1.0};
  const std::vector<double> olap_rates =
      opts.quick ? std::vector<double>{0, 2}
                 : std::vector<double>{0, 1, 2, 4};
  // Low-qps OLAP agents need a few seconds per cell to engage.
  if (!opts.quick && opts.measure < 2.5) opts.measure = 2.5;

  struct PeakRecord {
    std::string engine;
    double oltp_peak = 0, hybrid_peak = 0;
  };
  std::vector<PeakRecord> peaks;

  for (const engine::EngineProfile& profile : profiles) {
    benchfw::BenchmarkSuite suite = spec.make_suite(opts.Load());
    engine::Database db(profile);
    Status st = benchfw::SetUp(db, suite);
    if (!st.ok()) {
      std::fprintf(stderr, "setup failed on %s: %s\n", profile.name.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    benchfw::RunConfig cfg = opts.Run();

    double oltp_peak = DiscoverPeak(db, suite, benchfw::AgentKind::kOltp,
                                    spec.oltp_threads, cfg);
    std::printf("\n[%s] discovered peak OLTP throughput: %.1f tps\n",
                profile.name.c_str(), oltp_peak);

    // --- (a)+(b): txn-rate x olap-rate grid ---
    std::printf("%-10s %9s %9s | %12s %12s | %12s %12s\n", "engine",
                "txn_rate", "olap_qps", "oltp_tput", "oltp_ms", "olap_tput",
                "olap_ms");
    for (double frac : txn_fracs) {
      for (double aq : olap_rates) {
        double rate = frac * oltp_peak;
        if (rate <= 0 && aq <= 0) continue;
        std::vector<benchfw::AgentConfig> agents;
        if (rate > 0) {
          benchfw::AgentConfig oltp;
          oltp.kind = benchfw::AgentKind::kOltp;
          oltp.request_rate = rate;
          oltp.threads = spec.oltp_threads;
          agents.push_back(oltp);
        }
        if (aq > 0) {
          benchfw::AgentConfig olap;
          olap.kind = benchfw::AgentKind::kOlap;
          olap.request_rate = aq;
          olap.threads = spec.olap_threads;
          agents.push_back(olap);
        }
        auto r = Cell(db, suite, agents, cfg);
        const auto& to = r.Of(benchfw::AgentKind::kOltp);
        const auto& ta = r.Of(benchfw::AgentKind::kOlap);
        std::printf("%-10s %9.1f %9.1f | %12.1f %12.2f | %12.2f %12.2f\n",
                    profile.name.c_str(), rate, aq,
                    to.Throughput(r.measure_seconds),
                    to.latency.Mean() / 1000.0,
                    ta.Throughput(r.measure_seconds),
                    ta.latency.Mean() / 1000.0);
        std::fflush(stdout);
      }
    }

    // --- (c): OLxP sweep ---
    double hybrid_peak = DiscoverPeak(db, suite, benchfw::AgentKind::kHybrid,
                                      spec.hybrid_threads, cfg);
    std::printf("[%s] discovered peak OLxP throughput: %.1f tps\n",
                profile.name.c_str(), hybrid_peak);
    std::printf("%-10s %9s | %12s %12s %12s\n", "engine", "olxp_rate",
                "olxp_tput", "olxp_ms", "olxp_p95ms");
    for (double frac : {0.25, 0.5, 1.0, 2.0}) {
      double rate = frac * hybrid_peak;
      if (rate <= 0.05) continue;
      benchfw::AgentConfig hybrid;
      hybrid.kind = benchfw::AgentKind::kHybrid;
      hybrid.request_rate = rate;
      hybrid.threads = spec.hybrid_threads;
      auto r = Cell(db, suite, {hybrid}, cfg);
      const auto& th = r.Of(benchfw::AgentKind::kHybrid);
      std::printf("%-10s %9.1f | %12.1f %12.2f %12.2f\n",
                  profile.name.c_str(), rate,
                  th.Throughput(r.measure_seconds),
                  th.latency.Mean() / 1000.0, th.latency.P95() / 1000.0);
      std::fflush(stdout);
    }
    peaks.push_back({profile.name, oltp_peak, hybrid_peak});
  }

  // --- §VI-D summary block ---
  if (peaks.size() == 2) {
    std::printf("\n--- peak gaps (cf. §VI-D) ---\n");
    double oltp_gap = peaks[1].oltp_peak > 0
                          ? peaks[0].oltp_peak / peaks[1].oltp_peak
                          : 0;
    double olxp_gap = peaks[0].hybrid_peak > 0
                          ? peaks[1].hybrid_peak / peaks[0].hybrid_peak
                          : 0;
    std::printf("peak OLTP %s/%s = %.2fx (paper: ~2.6-3.0x)\n",
                peaks[0].engine.c_str(), peaks[1].engine.c_str(), oltp_gap);
    std::printf("peak OLxP %s/%s = %.2fx (paper: tidb wins on su/fi)\n",
                peaks[1].engine.c_str(), peaks[0].engine.c_str(), olxp_gap);
  }
  return 0;
}

}  // namespace olxp::bench

#endif  // OLXP_BENCH_SWEEP_COMMON_H_
