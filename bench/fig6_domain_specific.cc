// Reproduces Figure 6 (Test Case 3): why domain-specific benchmarks matter.
// subenchmark / fibenchmark / tabenchmark each run at the same online
// transaction rate; analytical queries at 1 qps are then injected. The
// paper reports baselines of 53.47 / 10.25 / 69.53 ms (fibench fastest,
// tabench slowest) and OLAP pressure hurting subench >5x, fibench <40%,
// tabench <20%.
#include "bench/bench_common.h"

namespace olxp::bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  // Low-rate OLAP agents (~1 qps) need a long window to engage
  // statistically (the paper ran 240 s); --measure overrides.
  if (!opts.quick && opts.measure < 6.0) opts.measure = 6.0;
  PrintHeader("Figure 6: generic vs domain-specific (tidb-like)",
              "baseline fibench < subench < tabench; OLAP pressure hits "
              "subench most, tabench least");

  struct Case {
    const char* label;
    benchfw::BenchmarkSuite suite;
  };
  std::vector<Case> cases;
  cases.push_back({"subenchmark", benchmarks::MakeSubenchmark(opts.Load())});
  cases.push_back({"fibenchmark", benchmarks::MakeFibenchmark(opts.Load())});
  cases.push_back({"tabenchmark", benchmarks::MakeTabenchmark(opts.Load())});

  const double rate = opts.quick ? 30 : 80;
  std::printf("%-14s %12s %10s %14s %12s %8s\n", "benchmark", "base(ms)",
              "base sd", "+olap(ms)", "+olap sd", "factor");

  for (Case& c : cases) {
    engine::Database db(engine::EngineProfile::TiDbLike());
    Status st = benchfw::SetUp(db, c.suite);
    if (!st.ok()) {
      std::fprintf(stderr, "setup %s failed: %s\n", c.label,
                   st.ToString().c_str());
      return 1;
    }
    benchfw::AgentConfig oltp;
    oltp.kind = benchfw::AgentKind::kOltp;
    oltp.request_rate = rate;
    oltp.threads = 12;
    benchfw::AgentConfig olap;
    olap.kind = benchfw::AgentKind::kOlap;
    olap.request_rate = 1.0;
    olap.threads = 2;

    auto base = Cell(db, c.suite, {oltp}, opts.Run());
    auto mixed = Cell(db, c.suite, {oltp, olap}, opts.Run());
    const auto& b = base.Of(benchfw::AgentKind::kOltp);
    const auto& m = mixed.Of(benchfw::AgentKind::kOltp);
    double factor =
        b.latency.Mean() > 0 ? m.latency.Mean() / b.latency.Mean() : 0;
    std::printf("%-14s %12.2f %10.2f %14.2f %12.2f %7.2fx\n", c.label,
                b.latency.Mean() / 1000.0, b.latency.StdDev() / 1000.0,
                m.latency.Mean() / 1000.0, m.latency.StdDev() / 1000.0,
                factor);
    std::printf("%s\n",
                benchfw::FigureRow(std::string("fig6/") + c.label, 0,
                                   "baseline_ms", b.latency.Mean() / 1000.0)
                    .c_str());
    std::printf("%s\n",
                benchfw::FigureRow(std::string("fig6/") + c.label, 1,
                                   "olap_factor", factor)
                    .c_str());
  }
  std::printf(
      "\npaper: baselines 53.47 / 10.25 / 69.53 ms; factors >5x / <1.4x / "
      "<1.2x\n");
  return 0;
}

}  // namespace
}  // namespace olxp::bench

int main(int argc, char** argv) { return olxp::bench::Main(argc, argv); }
