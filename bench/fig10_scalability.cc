// Reproduces Figure 10: OLTP / OLTP+OLAP / OLxP latency of subenchmark as
// the simulated cluster grows from 4 to 16 nodes. TiDB-like and
// OceanBase-like engines scale out (coordination costs grow with node
// count); MemSQL-like is measured at 4 nodes only (the paper's footnote 1:
// commercial licensing).
//
// Paper: OceanBase OLTP latency +20%/+24% (avg/p95) from 4 to 16 nodes;
// TiDB-like grows >1x; OLxP latency rises sharply for both; under OLAP
// pressure TiDB's decoupled stores degrade less (~6% vs ~18%).
#include <string>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "common/rng.h"

namespace olxp::bench {
namespace {

struct CellOut {
  double avg_ms = 0, p95_ms = 0;
};

/// Intra-query scaling ablation: where fig10 proper scales the CLUSTER and
/// watches coordination costs grow, this section scales the exec_threads
/// knob and watches one analytical statement's wall-clock shrink — the
/// morsel-driven parallel layer is the single-node analog of "throw more
/// hardware at OLAP". Reported per lane count for a scan-aggregate and a
/// join-aggregate over the fig5-sized replica (wall-clock, charging off).
void IntraQueryScaling(const BenchOptions& opts,
                       benchfw::BenchJsonReport* report) {
  std::printf("\n--- intra-query scaling: exec_threads ablation ---\n");
  engine::EngineProfile p = engine::EngineProfile::TiDbLike();
  p.olap_row_fraction = 0.0;
  p.cost_based_routing = false;
  engine::Database db(p);
  auto s = db.CreateSession();
  s->set_charging_enabled(false);

  const int rows = opts.quick ? 20000 : 120000;
  const int products = opts.quick ? 4000 : 20000;
  if (!LoadSaleProductReplica(db, *s, rows, products, opts.seed)) return;
  db.replicator().Stop();  // quiesce: wall-clock wants an idle box

  const char* kScanAgg =
      "SELECT region, COUNT(*), SUM(amount), MAX(amount) FROM sale "
      "WHERE qty > 3 GROUP BY region";
  const char* kJoinAgg =
      "SELECT p.category, COUNT(*), SUM(s.amount) FROM sale s "
      "JOIN product p ON s.pid = p.pid GROUP BY p.category";
  const int reps = opts.quick ? 3 : 5;
  auto best_us = [&](const char* sql) {
    int64_t best = INT64_MAX;
    for (int r = 0; r < reps; ++r) {
      int64_t t0 = NowMicros();
      auto rs = s->Execute(sql);
      if (!rs.ok()) return int64_t{-1};
      best = std::min(best, NowMicros() - t0);
    }
    return best;
  };

  std::printf("%d sale rows; best of %d runs; host cores matter here\n",
              rows, reps);
  std::printf("%8s | %14s %8s | %14s %8s\n", "threads", "scan_agg_ms",
              "speedup", "join_agg_ms", "speedup");
  double scan_serial = 0, join_serial = 0, scan_speedup_at8 = 1.0;
  for (int threads : {1, 2, 4, 8}) {
    db.set_exec_threads(threads);
    int64_t scan_us = best_us(kScanAgg);
    int64_t join_us = best_us(kJoinAgg);
    if (scan_us < 0 || join_us < 0) {
      std::fprintf(stderr, "ablation query failed\n");
      return;
    }
    if (threads == 1) {
      scan_serial = static_cast<double>(scan_us);
      join_serial = static_cast<double>(join_us);
    }
    double ss = scan_serial / static_cast<double>(scan_us);
    double js = join_serial / static_cast<double>(join_us);
    if (threads == 8) scan_speedup_at8 = ss;
    std::printf("%8d | %14.2f %7.1fx | %14.2f %7.1fx\n", threads,
                scan_us / 1000.0, ss, join_us / 1000.0, js);
    const std::string label = "intra_query/" + std::to_string(threads) + "t";
    report->AddMetric(label, "scan_agg_us", static_cast<double>(scan_us));
    report->AddMetric(label, "join_agg_us", static_cast<double>(join_us));
    report->AddMetric(label, "scan_speedup", ss);
    report->AddMetric(label, "join_speedup", js);
  }
  std::printf("%s\n",
              benchfw::FigureRow("fig10", 9, "intra_query_speedup_8t",
                                 scan_speedup_at8)
                  .c_str());
  report->AddMetric("intra_query", "speedup_8t", scan_speedup_at8);
}

CellOut Measure(engine::Database& db, const benchfw::BenchmarkSuite& suite,
                const std::vector<benchfw::AgentConfig>& agents,
                benchfw::AgentKind kind, const benchfw::RunConfig& cfg) {
  auto r = Cell(db, suite, agents, cfg);
  const auto& k = r.Of(kind);
  return {k.latency.Mean() / 1000.0, k.latency.P95() / 1000.0};
}

int Main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  PrintHeader("Figure 10: scalability 4 -> 16 nodes (subenchmark)",
              "latency grows with cluster size; OLxP sharply; tidb-like "
              "isolates OLAP pressure better than oceanbase-like");

  benchfw::BenchJsonReport jreport("fig10");
  jreport.AddConfig("quick", opts.quick);
  jreport.AddConfig("measure_seconds", opts.measure);
  jreport.AddConfig("scale", static_cast<double>(opts.scale));
  jreport.AddConfig("seed", static_cast<double>(opts.seed));

  struct EngineCase {
    engine::EngineProfile profile;
    std::vector<int> node_counts;
  };
  std::vector<EngineCase> engines;
  engines.push_back({engine::EngineProfile::TiDbLike(), {4, 8, 16}});
  engines.push_back({engine::EngineProfile::OceanBaseLike(), {4, 8, 16}});
  engines.push_back({engine::EngineProfile::MemSqlLike(), {4}});

  const double oltp_rate = opts.quick ? 30 : 60;
  const double hybrid_rate = opts.quick ? 3 : 6;

  std::printf("%-16s %5s | %9s %9s | %9s %9s | %9s %9s\n", "engine", "nodes",
              "oltp_avg", "oltp_p95", "mix_avg", "mix_p95", "olxp_avg",
              "olxp_p95");
  for (EngineCase& ec : engines) {
    benchfw::BenchmarkSuite suite = benchmarks::MakeSubenchmark(opts.Load());
    engine::Database db(ec.profile);
    Status st = benchfw::SetUp(db, suite);
    if (!st.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
      return 1;
    }
    for (int nodes : ec.node_counts) {
      // The paper scales data and target rates with the cluster; our
      // latency-model coordination factor is the per-request effect that
      // remains once per-node load is held constant.
      db.set_cluster_nodes(nodes);

      benchfw::AgentConfig oltp;
      oltp.kind = benchfw::AgentKind::kOltp;
      oltp.request_rate = oltp_rate;
      oltp.threads = 10;
      benchfw::AgentConfig olap;
      olap.kind = benchfw::AgentKind::kOlap;
      olap.request_rate = 1.0;
      olap.threads = 2;
      benchfw::AgentConfig hybrid;
      hybrid.kind = benchfw::AgentKind::kHybrid;
      hybrid.request_rate = hybrid_rate;
      hybrid.threads = 6;

      CellOut a = Measure(db, suite, {oltp}, benchfw::AgentKind::kOltp,
                          opts.Run());
      CellOut b = Measure(db, suite, {oltp, olap}, benchfw::AgentKind::kOltp,
                          opts.Run());
      CellOut c = Measure(db, suite, {hybrid}, benchfw::AgentKind::kHybrid,
                          opts.Run());
      std::printf("%-16s %5d | %9.2f %9.2f | %9.2f %9.2f | %9.2f %9.2f\n",
                  ec.profile.name.c_str(), nodes, a.avg_ms, a.p95_ms,
                  b.avg_ms, b.p95_ms, c.avg_ms, c.p95_ms);
      std::fflush(stdout);
      const std::string label =
          ec.profile.name + "/" + std::to_string(nodes) + "nodes";
      jreport.AddMetric(label, "oltp_avg_ms", a.avg_ms);
      jreport.AddMetric(label, "oltp_p95_ms", a.p95_ms);
      jreport.AddMetric(label, "mix_avg_ms", b.avg_ms);
      jreport.AddMetric(label, "mix_p95_ms", b.p95_ms);
      jreport.AddMetric(label, "olxp_avg_ms", c.avg_ms);
      jreport.AddMetric(label, "olxp_p95_ms", c.p95_ms);
    }
  }
  IntraQueryScaling(opts, &jreport);
  jreport.Write();
  return 0;
}

}  // namespace
}  // namespace olxp::bench

int main(int argc, char** argv) { return olxp::bench::Main(argc, argv); }
