// Reproduces Figure 10: OLTP / OLTP+OLAP / OLxP latency of subenchmark as
// the simulated cluster grows from 4 to 16 nodes. TiDB-like and
// OceanBase-like engines scale out (coordination costs grow with node
// count); MemSQL-like is measured at 4 nodes only (the paper's footnote 1:
// commercial licensing).
//
// Paper: OceanBase OLTP latency +20%/+24% (avg/p95) from 4 to 16 nodes;
// TiDB-like grows >1x; OLxP latency rises sharply for both; under OLAP
// pressure TiDB's decoupled stores degrade less (~6% vs ~18%).
#include "bench/bench_common.h"

namespace olxp::bench {
namespace {

struct CellOut {
  double avg_ms = 0, p95_ms = 0;
};

CellOut Measure(engine::Database& db, const benchfw::BenchmarkSuite& suite,
                const std::vector<benchfw::AgentConfig>& agents,
                benchfw::AgentKind kind, const benchfw::RunConfig& cfg) {
  auto r = Cell(db, suite, agents, cfg);
  const auto& k = r.Of(kind);
  return {k.latency.Mean() / 1000.0, k.latency.P95() / 1000.0};
}

int Main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  PrintHeader("Figure 10: scalability 4 -> 16 nodes (subenchmark)",
              "latency grows with cluster size; OLxP sharply; tidb-like "
              "isolates OLAP pressure better than oceanbase-like");

  struct EngineCase {
    engine::EngineProfile profile;
    std::vector<int> node_counts;
  };
  std::vector<EngineCase> engines;
  engines.push_back({engine::EngineProfile::TiDbLike(), {4, 8, 16}});
  engines.push_back({engine::EngineProfile::OceanBaseLike(), {4, 8, 16}});
  engines.push_back({engine::EngineProfile::MemSqlLike(), {4}});

  const double oltp_rate = opts.quick ? 30 : 60;
  const double hybrid_rate = opts.quick ? 3 : 6;

  std::printf("%-16s %5s | %9s %9s | %9s %9s | %9s %9s\n", "engine", "nodes",
              "oltp_avg", "oltp_p95", "mix_avg", "mix_p95", "olxp_avg",
              "olxp_p95");
  for (EngineCase& ec : engines) {
    benchfw::BenchmarkSuite suite = benchmarks::MakeSubenchmark(opts.Load());
    engine::Database db(ec.profile);
    Status st = benchfw::SetUp(db, suite);
    if (!st.ok()) {
      std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
      return 1;
    }
    for (int nodes : ec.node_counts) {
      // The paper scales data and target rates with the cluster; our
      // latency-model coordination factor is the per-request effect that
      // remains once per-node load is held constant.
      db.set_cluster_nodes(nodes);

      benchfw::AgentConfig oltp;
      oltp.kind = benchfw::AgentKind::kOltp;
      oltp.request_rate = oltp_rate;
      oltp.threads = 10;
      benchfw::AgentConfig olap;
      olap.kind = benchfw::AgentKind::kOlap;
      olap.request_rate = 1.0;
      olap.threads = 2;
      benchfw::AgentConfig hybrid;
      hybrid.kind = benchfw::AgentKind::kHybrid;
      hybrid.request_rate = hybrid_rate;
      hybrid.threads = 6;

      CellOut a = Measure(db, suite, {oltp}, benchfw::AgentKind::kOltp,
                          opts.Run());
      CellOut b = Measure(db, suite, {oltp, olap}, benchfw::AgentKind::kOltp,
                          opts.Run());
      CellOut c = Measure(db, suite, {hybrid}, benchfw::AgentKind::kHybrid,
                          opts.Run());
      std::printf("%-16s %5d | %9.2f %9.2f | %9.2f %9.2f | %9.2f %9.2f\n",
                  ec.profile.name.c_str(), nodes, a.avg_ms, a.p95_ms,
                  b.avg_ms, b.p95_ms, c.avg_ms, c.p95_ms);
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace olxp::bench

int main(int argc, char** argv) { return olxp::bench::Main(argc, argv); }
