// google-benchmark micro benchmarks for the substrates: MVCC table
// operations, lock manager, histogram, SQL parse/compile/execute. These are
// the ablation-style numbers backing the latency model calibration in
// DESIGN.md (what one storage operation costs before simulated charges).
#include <benchmark/benchmark.h>

#include "common/histogram.h"
#include "common/rng.h"
#include "engine/database.h"
#include "engine/session.h"
#include "sql/parser.h"
#include "storage/lock_manager.h"
#include "storage/oracle.h"
#include "storage/table.h"

namespace olxp {
namespace {

storage::TableSchema KvSchema() {
  return storage::TableSchema(
      "kv",
      {{"k", ValueType::kInt, false}, {"v", ValueType::kString, true}},
      {0});
}

void BM_TableInstall(benchmark::State& state) {
  storage::MvccTable table(0, KvSchema());
  storage::TimestampOracle oracle;
  int64_t k = 0;
  for (auto _ : state) {
    // Fresh keys with a monotone oracle cannot fail the ascending-ts check.
    (void)table.InstallVersion({Value::Int(k)}, oracle.Advance(), false,
                               {Value::Int(k), Value::String("payload")});
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableInstall);

void BM_TableGet(benchmark::State& state) {
  storage::MvccTable table(0, KvSchema());
  storage::TimestampOracle oracle;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    // Fresh keys with a monotone oracle cannot fail the ascending-ts check.
    (void)table.InstallVersion({Value::Int(i)}, oracle.Advance(), false,
                               {Value::Int(i), Value::String("payload")});
  }
  Rng rng(1);
  uint64_t ts = oracle.Current();
  for (auto _ : state) {
    auto row = table.Get({Value::Int(rng.Uniform(int64_t{0}, int64_t{n - 1}))},
                         ts);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableGet)->Arg(1000)->Arg(100000);

void BM_TableScan(benchmark::State& state) {
  storage::MvccTable table(0, KvSchema());
  storage::TimestampOracle oracle;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    // Fresh keys with a monotone oracle cannot fail the ascending-ts check.
    (void)table.InstallVersion({Value::Int(i)}, oracle.Advance(), false,
                               {Value::Int(i), Value::String("payload")});
  }
  uint64_t ts = oracle.Current();
  for (auto _ : state) {
    int64_t count = 0;
    table.Scan(ts, [&](const Row&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TableScan)->Arg(1000)->Arg(100000);

void BM_LockAcquireRelease(benchmark::State& state) {
  storage::LockManager locks;
  Row key = {Value::Int(7)};
  uint64_t txn = 1;
  for (auto _ : state) {
    Status st = locks.Acquire(txn, 0, key, 1000);
    benchmark::DoNotOptimize(st);
    locks.Release(txn, 0, key);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockAcquireRelease);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram hist;
  Rng rng(1);
  for (auto _ : state) {
    hist.Record(static_cast<int64_t>(rng.Uniform(int64_t{1}, int64_t{100000})));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_SqlParse(benchmark::State& state) {
  const char* sql =
      "SELECT c.c_credit, COUNT(*), AVG(o.o_ol_cnt) FROM orders o JOIN "
      "customer c ON c.c_w_id = o.o_w_id AND c.c_d_id = o.o_d_id AND "
      "c.c_id = o.o_c_id WHERE o.o_id > 10 GROUP BY c.c_credit "
      "ORDER BY 2 DESC LIMIT 5";
  for (auto _ : state) {
    auto stmt = sql::Parse(sql);
    benchmark::DoNotOptimize(stmt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlParse);

void BM_PointSelectEndToEnd(benchmark::State& state) {
  engine::Database db(engine::EngineProfile::MemSqlLike());
  auto session = db.CreateSession();
  session->set_charging_enabled(false);
  (void)session->Execute(
      "CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(32))");
  for (int i = 0; i < 10000; ++i) {
    (void)session->Execute("INSERT INTO kv VALUES (?, ?)",
                           {Value::Int(i), Value::String("payload")});
  }
  Rng rng(1);
  for (auto _ : state) {
    auto rs = session->Execute(
        "SELECT v FROM kv WHERE k = ?",
        {Value::Int(rng.Uniform(int64_t{0}, int64_t{9999}))});
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointSelectEndToEnd);

void BM_AggregateQueryEndToEnd(benchmark::State& state) {
  engine::Database db(engine::EngineProfile::MemSqlLike());
  auto session = db.CreateSession();
  session->set_charging_enabled(false);
  (void)session->Execute(
      "CREATE TABLE t (k INT PRIMARY KEY, grp INT, x DOUBLE)");
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    (void)session->Execute(
        "INSERT INTO t VALUES (?, ?, ?)",
        {Value::Int(i), Value::Int(i % 16), Value::Double(rng.NextDouble())});
  }
  for (auto _ : state) {
    auto rs = session->Execute(
        "SELECT grp, COUNT(*), SUM(x), AVG(x) FROM t GROUP BY grp "
        "ORDER BY grp");
    benchmark::DoNotOptimize(rs);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_AggregateQueryEndToEnd);

}  // namespace
}  // namespace olxp

BENCHMARK_MAIN();
