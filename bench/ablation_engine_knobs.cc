// Ablation study for the engine-profile design choices DESIGN.md calls
// out. Three sweeps on the TiDB-like profile with fibenchmark (fast loads):
//
//  A. Replication lag: freshness of the columnar replica (how stale an
//     analytical audit is immediately after a burst of commits).
//  B. OLAP row-store fraction: how much of the paper's OLTP/OLAP
//     interference comes from analytical statements landing on the row
//     store versus the replica.
//  C. Isolation level: retry/abort profile of the same contended workload
//     under snapshot isolation versus read committed.
#include "bench/bench_common.h"

namespace olxp::bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  PrintHeader("Ablation: engine knobs (fibenchmark, tidb-like base)",
              "design-choice sensitivity, no direct paper analogue");

  // ---------- A: replication lag vs observed staleness ----------
  std::printf("[A] replication lag -> replica staleness after a commit "
              "burst\n");
  std::printf("%10s %16s\n", "lag(ms)", "stale rows seen");
  for (int64_t lag_ms : {0, 20, 100, 300}) {
    engine::EngineProfile p = engine::EngineProfile::TiDbLike();
    p.replication_lag_micros = lag_ms * 1000;
    p.olap_row_fraction = 0.0;  // audits always hit the replica
    benchfw::BenchmarkSuite suite = benchmarks::MakeFibenchmark(opts.Load());
    engine::Database db(p);
    if (!benchfw::SetUp(db, suite).ok()) return 1;
    auto s = db.CreateSession();
    s->set_charging_enabled(false);
    // Burst of 200 deposits, then immediately audit via the replica.
    for (int i = 1; i <= 200; ++i) {
      (void)s->Execute(
          "UPDATE checking SET bal = bal + 1 WHERE custid = ?",
          {Value::Int(i)});
    }
    auto audit = s->Execute(
        "SELECT COUNT(*) FROM checking WHERE bal > 1000.5");
    int64_t fresh = audit.ok() ? audit->rows[0][0].AsInt() : -1;
    std::printf("%10lld %16lld\n", static_cast<long long>(lag_ms),
                static_cast<long long>(200 - fresh));
  }

  // ---------- B: OLAP routing fraction vs OLTP interference ----------
  std::printf("\n[B] olap_row_fraction -> OLTP latency under 2 qps OLAP\n");
  std::printf("%10s %14s\n", "fraction", "oltp mean(ms)");
  for (double frac : {0.0, 0.3, 0.65, 1.0}) {
    engine::EngineProfile p = engine::EngineProfile::TiDbLike();
    p.olap_row_fraction = frac;
    benchfw::BenchmarkSuite suite = benchmarks::MakeFibenchmark(opts.Load());
    engine::Database db(p);
    if (!benchfw::SetUp(db, suite).ok()) return 1;
    benchfw::AgentConfig oltp;
    oltp.kind = benchfw::AgentKind::kOltp;
    oltp.request_rate = opts.quick ? 50 : 150;
    oltp.threads = 8;
    benchfw::AgentConfig olap;
    olap.kind = benchfw::AgentKind::kOlap;
    olap.request_rate = 2;
    olap.threads = 2;
    benchfw::RunConfig cfg = opts.Run();
    if (!opts.quick && cfg.measure_seconds < 4) cfg.measure_seconds = 4;
    auto r = Cell(db, suite, {oltp, olap}, cfg);
    std::printf("%10.2f %14.2f\n", frac,
                r.Of(benchfw::AgentKind::kOltp).latency.Mean() / 1000.0);
  }

  // ---------- C: isolation level vs abort/retry profile ----------
  std::printf("\n[C] isolation level under hotspot contention "
              "(closed loop, 12 threads)\n");
  std::printf("%22s %10s %10s %10s %12s\n", "isolation", "tput", "retries",
              "errors", "lock waits");
  for (auto iso : {txn::IsolationLevel::kSnapshotIsolation,
                   txn::IsolationLevel::kReadCommitted}) {
    engine::EngineProfile p = engine::EngineProfile::TiDbLike();
    p.isolation = iso;
    benchfw::BenchmarkSuite suite = benchmarks::MakeFibenchmark(opts.Load());
    engine::Database db(p);
    if (!benchfw::SetUp(db, suite).ok()) return 1;
    benchfw::AgentConfig oltp;
    oltp.kind = benchfw::AgentKind::kOltp;
    oltp.request_rate = -1;
    oltp.threads = 12;
    auto r = Cell(db, suite, {oltp}, opts.Run());
    const auto& k = r.Of(benchfw::AgentKind::kOltp);
    std::printf("%22s %10.0f %10llu %10llu %12llu\n",
                txn::IsolationLevelName(iso),
                k.Throughput(r.measure_seconds),
                static_cast<unsigned long long>(k.retries),
                static_cast<unsigned long long>(k.errors),
                static_cast<unsigned long long>(r.lock_acquisitions));
  }
  return 0;
}

}  // namespace
}  // namespace olxp::bench

int main(int argc, char** argv) { return olxp::bench::Main(argc, argv); }
