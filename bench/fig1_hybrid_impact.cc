// Reproduces Figure 1: the impact of a hybrid workload (a real-time
// min-price query in-between a NewOrder transaction) on a TiDB-like engine
// versus the plain NewOrder transaction. The paper reports the real-time
// query raising average latency by ~5.9x and cutting throughput by ~5.9x.
//
// Both cells run closed-loop with the same client population, so the
// latency inflation and the throughput collapse are two views of the same
// saturation effect, as in the paper's experiment.
#include "bench/bench_common.h"

namespace olxp::bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  if (opts.scale < 4) opts.scale = 4;  // enough warehouses to keep the
                                       // baseline off the contention knee
  PrintHeader("Figure 1: hybrid transaction impact (subenchmark, tidb-like)",
              "real-time query => ~5.9x latency, ~1/5.9x throughput");

  benchfw::BenchJsonReport jreport("fig1");
  jreport.AddConfig("profile", "tidb-like");
  jreport.AddConfig("quick", opts.quick);
  jreport.AddConfig("measure_seconds", opts.measure);
  jreport.AddConfig("scale", static_cast<double>(opts.scale));
  jreport.AddConfig("seed", static_cast<double>(opts.seed));

  benchfw::BenchmarkSuite suite = benchmarks::MakeSubenchmark(opts.Load());
  engine::Database db(engine::EngineProfile::TiDbLike());
  Status st = benchfw::SetUp(db, suite);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  benchfw::AgentConfig oltp;
  oltp.kind = benchfw::AgentKind::kOltp;
  oltp.request_rate = -1;  // closed loop
  oltp.threads = 8;
  oltp.weight_override = {1, 0, 0, 0, 0};  // NewOrder only

  benchfw::AgentConfig hybrid;
  hybrid.kind = benchfw::AgentKind::kHybrid;
  hybrid.request_rate = -1;
  hybrid.threads = 8;
  hybrid.weight_override = {1, 0, 0, 0, 0};  // X1 only

  auto baseline = Cell(db, suite, {oltp}, opts.Run());
  auto hybrid_run = Cell(db, suite, {hybrid}, opts.Run());

  const auto& b = baseline.Of(benchfw::AgentKind::kOltp);
  const auto& h = hybrid_run.Of(benchfw::AgentKind::kHybrid);
  std::printf("NewOrder (baseline): %s\n",
              benchfw::FormatKindStats(benchfw::AgentKind::kOltp, b,
                                       baseline.measure_seconds)
                  .c_str());
  std::printf("X1 (hybrid):         %s\n",
              benchfw::FormatKindStats(benchfw::AgentKind::kHybrid, h,
                                       hybrid_run.measure_seconds)
                  .c_str());

  double lat_ratio = b.latency.Mean() > 0
                         ? h.latency.Mean() / b.latency.Mean()
                         : 0;
  double tput_ratio =
      h.Throughput(hybrid_run.measure_seconds) > 0
          ? b.Throughput(baseline.measure_seconds) /
                h.Throughput(hybrid_run.measure_seconds)
          : 0;
  std::printf("\nlatency increase factor:    %.2fx (paper: 5.9x)\n",
              lat_ratio);
  std::printf("throughput reduction factor: %.2fx (paper: 5.9x)\n",
              tput_ratio);
  std::printf("%s\n",
              benchfw::FigureRow("fig1", 0, "latency_factor", lat_ratio)
                  .c_str());
  std::printf("%s\n",
              benchfw::FigureRow("fig1", 0, "tput_factor", tput_ratio)
                  .c_str());

  // Chunked-scan ablation (§V-B interference path): rerun the hybrid cell
  // with scans holding the table latch for their WHOLE sweep (the
  // pre-chunking engine) and print the before/after factor pair. In THIS
  // cell the real-time query sweeps ITEM, which the OLTP mix never writes,
  // so the factors should match within noise — the check is that chunked
  // scans cost the hybrid figure nothing. The cell where sweeps and
  // commits share tables (where whole-sweep latch holds visibly inflate
  // OLTP latency) is fig4's ablation.
  const size_t prev_chunk = db.profile().scan_chunk_rows;
  db.set_scan_chunk_rows(0);
  auto hybrid_unchunked = Cell(db, suite, {hybrid}, opts.Run());
  db.set_scan_chunk_rows(prev_chunk);
  const auto& hu = hybrid_unchunked.Of(benchfw::AgentKind::kHybrid);
  double lat_ratio_unchunked =
      b.latency.Mean() > 0 ? hu.latency.Mean() / b.latency.Mean() : 0;
  std::printf("\n--- chunked-scan ablation (hybrid cell) ---\n");
  std::printf("X1 (whole-sweep latch): %s\n",
              benchfw::FormatKindStats(benchfw::AgentKind::kHybrid, hu,
                                       hybrid_unchunked.measure_seconds)
                  .c_str());
  std::printf("latency factor, chunked scans (default): %.2fx\n", lat_ratio);
  std::printf("latency factor, whole-sweep latch:       %.2fx\n",
              lat_ratio_unchunked);
  std::printf("%s\n",
              benchfw::FigureRow("fig1", 1, "latency_factor_unchunked",
                                 lat_ratio_unchunked)
                  .c_str());

  jreport.AddCell("baseline", baseline);
  jreport.AddCell("hybrid", hybrid_run);
  jreport.AddCell("hybrid_unchunked", hybrid_unchunked);
  jreport.AddMetric("impact", "latency_factor", lat_ratio);
  jreport.AddMetric("impact", "tput_factor", tput_ratio);
  jreport.AddMetric("impact", "latency_factor_unchunked",
                    lat_ratio_unchunked);
  jreport.Write();
  return 0;
}

}  // namespace
}  // namespace olxp::bench

int main(int argc, char** argv) { return olxp::bench::Main(argc, argv); }
