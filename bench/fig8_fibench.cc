// Reproduces Figure 8: OLTP, OLAP and OLxP performance of fibenchmark
// (banking) on the MemSQL-like and TiDB-like engines. The paper highlights
// fibench's read-heavier mix peaking ~10-20x above subenchmark and
// analytical queries being blocked behind expensive scans.
#include "bench/sweep_common.h"

int main(int argc, char** argv) {
  olxp::bench::SweepSpec spec;
  spec.figure = "Figure 8";
  spec.benchmark_name = "fibenchmark";
  spec.make_suite = [](olxp::benchfw::LoadParams p) {
    return olxp::benchmarks::MakeFibenchmark(p);
  };
  return olxp::bench::RunSweep(spec, argc, argv);
}
