// Reproduces Figure 4: normalized lock overhead of the semantically
// consistent schema (subenchmark) versus the stitched schema
// (CH-benCHmark) under 0/1/2 OLAP threads on the TiDB-like engine.
//
// The paper measures lock overhead with `perf` as the fraction of samples
// in lock functions, normalized to the no-OLAP baseline; our LockManager
// accounts the same quantity directly (blocked-time share of busy time).
// Paper: the gap between schemas is 1.76x at one OLAP thread and 1.68x at
// two.
#include "bench/bench_common.h"

namespace olxp::bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  // Low-rate OLAP agents (~1 qps) need a long window to engage
  // statistically (the paper ran 240 s); --measure overrides.
  if (!opts.quick && opts.measure < 6.0) opts.measure = 6.0;
  PrintHeader("Figure 4: lock overhead by schema model (tidb-like)",
              "NLO gap between schemas ~1.76x (1 OLAP thr), ~1.68x (2)");

  benchfw::BenchJsonReport jreport("fig4");
  jreport.AddConfig("quick", opts.quick);
  jreport.AddConfig("measure_seconds", opts.measure);
  jreport.AddConfig("scale", static_cast<double>(opts.scale));
  jreport.AddConfig("seed", static_cast<double>(opts.seed));
  jreport.AddConfig("oltp_threads", 10.0);

  struct Case {
    const char* label;
    benchfw::BenchmarkSuite suite;
    double nlo[3] = {0, 0, 0};
  };
  std::vector<Case> cases;
  cases.push_back({"olxp(subench)", benchmarks::MakeSubenchmark(opts.Load())});
  cases.push_back({"ch-benchmark", benchmarks::MakeChBenchmark(opts.Load())});

  // Write-bearing OLTP mix so row locks are actually exercised; constant L
  // via a fixed closed-loop client population (Little's law).
  const int oltp_threads = 10;

  for (Case& c : cases) {
    engine::Database db(engine::EngineProfile::TiDbLike());
    Status st = benchfw::SetUp(db, c.suite);
    if (!st.ok()) {
      std::fprintf(stderr, "setup %s failed: %s\n", c.label,
                   st.ToString().c_str());
      return 1;
    }
    benchfw::AgentConfig oltp;
    oltp.kind = benchfw::AgentKind::kOltp;
    oltp.request_rate = -1;  // closed loop: constant L
    oltp.threads = oltp_threads;

    double baseline_lo = 0;
    for (int n = 0; n <= 2; ++n) {
      std::vector<benchfw::AgentConfig> agents = {oltp};
      if (n > 0) {
        benchfw::AgentConfig olap;
        olap.kind = benchfw::AgentKind::kOlap;
        olap.request_rate = n;
        olap.threads = n;
        agents.push_back(olap);
      }
      auto result = Cell(db, c.suite, agents, opts.Run());
      double lo = result.LockOverhead();
      if (n == 0) baseline_lo = lo > 0 ? lo : 1e-9;
      c.nlo[n] = lo / baseline_lo;
    }
  }

  std::printf("%-15s %10s %10s %10s\n", "benchmark", "olap=0", "olap=1",
              "olap=2");
  for (const Case& c : cases) {
    std::printf("%-15s %10.3f %10.3f %10.3f\n", c.label, c.nlo[0], c.nlo[1],
                c.nlo[2]);
    for (int n = 0; n <= 2; ++n) {
      jreport.AddMetric(c.label, "nlo_olap" + std::to_string(n), c.nlo[n]);
    }
  }
  // Paper's normalized overhead *decreases* as OLAP pressure throttles
  // OLTP; the headline number is the gap between the two schemas.
  for (int n = 1; n <= 2; ++n) {
    double a = cases[0].nlo[n], b = cases[1].nlo[n];
    double gap = (a > 0 && b > 0) ? (a > b ? a / b : b / a) : 0;
    std::printf("gap at %d OLAP thread(s): %.2fx (paper: %.2fx)\n", n, gap,
                n == 1 ? 1.76 : 1.68);
    jreport.AddMetric("schema_gap", "gap_olap" + std::to_string(n), gap);
  }

  // Chunked-scan ablation (§V-B interference path): subench OLTP under
  // CLOSED-LOOP analytical sweeps (back-to-back scans, the worst case for
  // latch holds), chunked vs whole-sweep-latch scans on the same data.
  // OLTP latency inflation — lat(with OLAP)/lat(without) — rises when every
  // committer's InstallVersion stalls behind an entire analytical sweep;
  // the chunked resume-key scans bound that stall to one chunk.
  //
  // Methodology (as in durability_modes): the simulated device-latency
  // model is ZEROED, because the chunked-scan refactor changes real
  // wall-clock concurrency, not modeled costs — with the model on, its
  // sleeps dominate and bury the latch effect in noise. What remains is
  // genuine execution time, so the inflation isolates latch interference.
  {
    engine::EngineProfile profile = engine::EngineProfile::TiDbLike();
    // Every analytical statement on the row store (TiDbLike's default
    // routes only 65% there) so each sweep holds row-store latches — the
    // interference path under measurement.
    profile.olap_row_fraction = 1.0;
    profile.cost_based_routing = false;
    profile.latency.row_seek_ns = 0;
    profile.latency.row_scan_row_ns = 0;
    profile.latency.row_analytic_scan_row_ns = 0;
    profile.latency.col_scan_row_ns = 0;
    profile.latency.col_vector_row_ns = 0;
    profile.latency.col_join_build_row_ns = 0;
    profile.latency.col_join_row_ns = 0;
    profile.latency.write_ns = 0;
    profile.latency.commit_base_ns = 0;
    profile.latency.statement_overhead_ns = 0;
    profile.latency.scan_contention = 0;  // no modeled pressure either
    engine::Database db(std::move(profile));
    benchfw::BenchmarkSuite suite = benchmarks::MakeSubenchmark(opts.Load());
    Status st = benchfw::SetUp(db, suite);
    if (!st.ok()) {
      std::fprintf(stderr, "setup (ablation) failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    benchfw::AgentConfig oltp;
    oltp.kind = benchfw::AgentKind::kOltp;
    oltp.request_rate = -1;
    oltp.threads = oltp_threads;
    benchfw::AgentConfig olap;
    olap.kind = benchfw::AgentKind::kOlap;
    olap.request_rate = -1;  // closed loop: continuous sweeps
    olap.threads = 2;
    auto baseline = Cell(db, suite, {oltp}, opts.Run());
    auto chunked = Cell(db, suite, {oltp, olap}, opts.Run());
    const size_t prev_chunk = db.profile().scan_chunk_rows;
    db.set_scan_chunk_rows(0);
    auto unchunked = Cell(db, suite, {oltp, olap}, opts.Run());
    db.set_scan_chunk_rows(prev_chunk);
    const double base_lat =
        baseline.Of(benchfw::AgentKind::kOltp).latency.Mean();
    double infl_chunked =
        base_lat > 0
            ? chunked.Of(benchfw::AgentKind::kOltp).latency.Mean() / base_lat
            : 0;
    double infl_unchunked =
        base_lat > 0
            ? unchunked.Of(benchfw::AgentKind::kOltp).latency.Mean() /
                  base_lat
            : 0;
    std::printf(
        "\n--- chunked-scan ablation (subench, 2 closed-loop OLAP) ---\n");
    std::printf("OLTP latency inflation, chunked scans (default): %.2fx\n",
                infl_chunked);
    std::printf("OLTP latency inflation, whole-sweep latch:       %.2fx\n",
                infl_unchunked);
    std::printf("%s\n",
                benchfw::FigureRow("fig4", 0, "oltp_inflation_chunked",
                                   infl_chunked)
                    .c_str());
    std::printf("%s\n",
                benchfw::FigureRow("fig4", 1, "oltp_inflation_unchunked",
                                   infl_unchunked)
                    .c_str());
    jreport.AddMetric("ablation", "oltp_inflation_chunked", infl_chunked);
    jreport.AddMetric("ablation", "oltp_inflation_unchunked", infl_unchunked);
  }
  jreport.Write();
  return 0;
}

}  // namespace
}  // namespace olxp::bench

int main(int argc, char** argv) { return olxp::bench::Main(argc, argv); }
