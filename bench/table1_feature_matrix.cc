// Reproduces Table I: comparison of OLxPBench with state-of-the-art and
// state-of-the-practice HTAP benchmarks. Rows for the suites implemented in
// this repository are introspected live from their BenchmarkSuite metadata;
// rows for benchmarks that exist only in the literature (CBTR, HTAPBench,
// ADAPT, HAP) carry the paper's reported capabilities.
#include "bench/bench_common.h"

namespace olxp::bench {
namespace {

struct TableRow {
  std::string name;
  bool online_txn, analytical_query, hybrid_txn, real_time_query,
      semantically_consistent, general, domain_specific;
};

TableRow FromSuite(const benchfw::BenchmarkSuite& s) {
  return TableRow{s.name,
                  !s.transactions.empty(),
                  !s.queries.empty(),
                  s.has_hybrid_txn,
                  s.has_real_time_query,
                  s.semantically_consistent_schema,
                  s.general_benchmark,
                  s.domain_specific_benchmark};
}

const char* Mark(bool b) { return b ? "yes" : " - "; }

int Main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  PrintHeader("Table I: HTAP benchmark feature matrix",
              "only OLxPBench covers all seven capabilities");

  std::vector<TableRow> rows;
  rows.push_back(FromSuite(benchmarks::MakeChBenchmark(opts.Load())));
  // Literature-only rows (paper Table I).
  rows.push_back({"CBTR", true, true, false, false, true, false, true});
  rows.push_back({"HTAPBench", true, true, false, false, false, true, false});
  rows.push_back({"ADAPT", false, false, false, false, true, true, false});
  rows.push_back({"HAP", false, false, false, false, true, true, false});

  // The OLxPBench row is the union of its three suites.
  benchfw::BenchmarkSuite su = benchmarks::MakeSubenchmark(opts.Load());
  benchfw::BenchmarkSuite fi = benchmarks::MakeFibenchmark(opts.Load());
  benchfw::BenchmarkSuite ta = benchmarks::MakeTabenchmark(opts.Load());
  TableRow olxp{"OLxPBench",
                true,
                true,
                su.has_hybrid_txn && fi.has_hybrid_txn && ta.has_hybrid_txn,
                su.has_real_time_query,
                su.semantically_consistent_schema,
                su.general_benchmark,
                fi.domain_specific_benchmark && ta.domain_specific_benchmark};
  rows.push_back(olxp);

  std::printf("%-14s %7s %7s %7s %9s %11s %8s %8s\n", "name", "oltp", "olap",
              "hybrid", "realtime", "consistent", "general", "domain");
  for (const TableRow& r : rows) {
    std::printf("%-14s %7s %7s %7s %9s %11s %8s %8s\n", r.name.c_str(),
                Mark(r.online_txn), Mark(r.analytical_query),
                Mark(r.hybrid_txn), Mark(r.real_time_query),
                Mark(r.semantically_consistent), Mark(r.general),
                Mark(r.domain_specific));
  }
  return 0;
}

}  // namespace
}  // namespace olxp::bench

int main(int argc, char** argv) { return olxp::bench::Main(argc, argv); }
