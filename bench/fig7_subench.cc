// Reproduces Figure 7: OLTP, OLAP and OLxP performance of subenchmark on
// the MemSQL-like and TiDB-like engines (throughput sweeps + the §VI-D
// peak-gap summary).
#include "bench/sweep_common.h"

int main(int argc, char** argv) {
  olxp::bench::SweepSpec spec;
  spec.figure = "Figure 7";
  spec.benchmark_name = "subenchmark";
  spec.make_suite = [](olxp::benchfw::LoadParams p) {
    return olxp::benchmarks::MakeSubenchmark(p);
  };
  return olxp::bench::RunSweep(spec, argc, argv);
}
