// Compressed columnar blocks: memory footprint and zone-map scan benefit.
// Loads the fig5 sale/product star schema at 10x scale into two engines —
// one with sealed-block encoding (dictionary / RLE / bit-packing), one
// pinned to boxed raw blocks — and reports:
//
//   footprint_ratio   boxed bytes / encoded bytes for the sale replica
//                     (the PR's acceptance bar is >= 2x)
//   scan wall-clock   a selective pk-range aggregate (zone maps skip most
//                     sealed blocks) vs. an exhaustive aggregate over the
//                     same rows, on both storage modes
//   blocks_skipped    the selective scan must skip > 0 blocks, visible in
//                     BOTH the per-table gauges and EXPLAIN ANALYZE
//
// Exits non-zero if the footprint or skipping bar is missed, so CI treats
// a regression as a failure, not a number drift.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "bench/bench_common.h"
#include "common/clock.h"

namespace olxp::bench {
namespace {

/// Wall-clock of the fastest of `reps` executions (microseconds).
int64_t TimeQuery(engine::Session& s, const std::string& sql, int reps) {
  int64_t best = INT64_MAX;
  for (int r = 0; r < reps; ++r) {
    int64_t t0 = NowMicros();
    auto rs = s.Execute(sql);
    if (!rs.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   rs.status().ToString().c_str());
      return -1;
    }
    best = std::min(best, NowMicros() - t0);
  }
  return best;
}

/// Zone-skip count parsed out of an EXPLAIN ANALYZE rendering (the scan
/// operator prints "zskip=<n>"); -1 when absent or the statement fails.
int64_t ExplainZskip(engine::Session& s, const std::string& sql) {
  auto rs = s.Execute("EXPLAIN ANALYZE " + sql);
  if (!rs.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 rs.status().ToString().c_str());
    return -1;
  }
  for (const Row& r : rs->rows) {
    const std::string& line = r[0].AsString();
    const size_t pos = line.find("zskip=");
    if (pos != std::string::npos) {
      return std::atoll(line.c_str() + pos + 6);
    }
  }
  return -1;
}

struct ModeOut {
  int64_t selective_us = -1;
  int64_t exhaustive_us = -1;
  int64_t bytes_stored = 0;   // encoded bytes (== boxed bytes in raw mode)
  int64_t bytes_boxed = 0;
  int64_t blocks_skipped = 0;  // gauge delta across the selective scan
  int64_t explain_zskip = -1;
};

int Main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  PrintHeader("Compression: encoded sealed blocks vs boxed raw storage",
              "footprint >= 2x smaller; selective scans skip whole blocks");

  const int rows = opts.quick ? 200000 : 1200000;     // 10x fig5 scale
  const int products = opts.quick ? 40000 : 200000;
  const int reps = opts.quick ? 3 : 5;
  const int64_t cutoff = rows / 20;  // 5% selectivity on the monotone pk
  const std::string selective =
      "SELECT COUNT(*), SUM(amount) FROM sale WHERE id < " +
      std::to_string(cutoff);
  const std::string exhaustive =
      "SELECT COUNT(*), SUM(amount) FROM sale WHERE qty >= 1";

  benchfw::BenchJsonReport jreport("compression");
  jreport.AddConfig("quick", opts.quick);
  jreport.AddConfig("rows", static_cast<double>(rows));
  jreport.AddConfig("products", static_cast<double>(products));
  jreport.AddConfig("selectivity", 0.05);
  jreport.AddConfig("seed", static_cast<double>(opts.seed));

  ModeOut out[2];
  for (int encoded = 0; encoded < 2; ++encoded) {
    engine::EngineProfile p = engine::EngineProfile::TiDbLike();
    p.olap_row_fraction = 0.0;
    p.cost_based_routing = false;
    p.columnar_encoding = encoded != 0;
    engine::Database db(p);
    auto s = db.CreateSession();
    s->set_charging_enabled(false);
    if (!LoadSaleProductReplica(db, *s, rows, products, opts.seed)) return 1;
    db.replicator().Stop();  // quiesce: wall-clock wants an idle box

    ModeOut& m = out[encoded];
    (void)db.StatsJson();  // publish storage gauges
    auto before = db.metrics().Snapshot();
    m.bytes_stored = before.gauges.at("column.sale.bytes_encoded");
    m.bytes_boxed = before.gauges.at("column.sale.bytes_raw");
    const int64_t skipped0 = before.gauges.at("column.sale.blocks_skipped");

    m.selective_us = TimeQuery(*s, selective, reps);
    m.exhaustive_us = TimeQuery(*s, exhaustive, reps);
    if (m.selective_us < 0 || m.exhaustive_us < 0) return 1;

    (void)db.StatsJson();
    m.blocks_skipped =
        db.metrics().Snapshot().gauges.at("column.sale.blocks_skipped") -
        skipped0;
    m.explain_zskip = ExplainZskip(*s, selective);

    const char* label = encoded ? "encoded" : "raw";
    std::printf("%-8s | stored %8.2f MB (boxed %8.2f MB) | selective "
                "%8.2f ms | exhaustive %8.2f ms | skipped %lld blocks "
                "(explain zskip=%lld)\n",
                label, m.bytes_stored / 1048576.0, m.bytes_boxed / 1048576.0,
                m.selective_us / 1000.0, m.exhaustive_us / 1000.0,
                static_cast<long long>(m.blocks_skipped),
                static_cast<long long>(m.explain_zskip));

    const std::string l(label);
    jreport.AddMetric(l, "bytes_stored", static_cast<double>(m.bytes_stored));
    jreport.AddMetric(l, "bytes_boxed", static_cast<double>(m.bytes_boxed));
    jreport.AddMetric(l, "selective_scan_us",
                      static_cast<double>(m.selective_us));
    jreport.AddMetric(l, "exhaustive_scan_us",
                      static_cast<double>(m.exhaustive_us));
    jreport.AddMetric(l, "blocks_skipped",
                      static_cast<double>(m.blocks_skipped));
    jreport.AddMetric(l, "explain_zskip",
                      static_cast<double>(m.explain_zskip));
  }

  const ModeOut& enc = out[1];
  const double footprint_ratio =
      enc.bytes_stored > 0
          ? static_cast<double>(enc.bytes_boxed) / enc.bytes_stored
          : 0;
  const double skip_speedup =
      enc.selective_us > 0
          ? static_cast<double>(enc.exhaustive_us) / enc.selective_us
          : 0;
  std::printf("\nfootprint ratio (boxed/encoded):      %.2fx (bar: 2x)\n",
              footprint_ratio);
  std::printf("selective vs exhaustive (encoded):    %.2fx faster\n",
              skip_speedup);
  std::printf("%s\n",
              benchfw::FigureRow("compression", 0, "footprint_ratio",
                                 footprint_ratio)
                  .c_str());
  jreport.AddMetric("summary", "footprint_ratio", footprint_ratio);
  jreport.AddMetric("summary", "selective_speedup", skip_speedup);
  jreport.Write();

  bool ok = true;
  if (footprint_ratio < 2.0) {
    std::fprintf(stderr, "FAIL: footprint ratio %.2fx below the 2x bar\n",
                 footprint_ratio);
    ok = false;
  }
  // Zone maps are built in both modes, so BOTH must skip, and the skip
  // must be visible through the gauges and through EXPLAIN ANALYZE.
  for (const ModeOut& m : out) {
    if (m.blocks_skipped <= 0 || m.explain_zskip <= 0) {
      std::fprintf(stderr,
                   "FAIL: selective scan skipped no blocks (gauge %lld, "
                   "explain %lld)\n",
                   static_cast<long long>(m.blocks_skipped),
                   static_cast<long long>(m.explain_zskip));
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace olxp::bench

int main(int argc, char** argv) { return olxp::bench::Main(argc, argv); }
