#ifndef OLXP_BENCH_BENCH_COMMON_H_
#define OLXP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "benchfw/driver.h"
#include "benchfw/report.h"
#include "benchmarks/chbench/chbench.h"
#include "benchmarks/fibench/fibench.h"
#include "benchmarks/subench/subench.h"
#include "benchmarks/tabench/tabench.h"
#include "common/rng.h"
#include "common/strings.h"
#include "engine/database.h"
#include "engine/session.h"

namespace olxp::bench {

/// Command-line options shared by every figure binary.
///   --quick          shrink cells for smoke runs
///   --measure=SEC    per-cell measurement window
///   --warmup=SEC     per-cell warmup window
///   --scale=N        benchmark scale (warehouses / k-customers / k-subs)
///   --items=N        subench/chbench ITEM cardinality
///   --seed=N
struct BenchOptions {
  bool quick = false;
  double measure = 1.2;
  double warmup = 0.3;
  int scale = 4;
  int items = 10000;
  uint64_t seed = 42;

  static BenchOptions Parse(int argc, char** argv) {
    BenchOptions o;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--quick") == 0) {
        o.quick = true;
        o.measure = 0.5;
        o.warmup = 0.15;
        o.items = 2000;
      } else if (std::strncmp(a, "--measure=", 10) == 0) {
        o.measure = std::atof(a + 10);
      } else if (std::strncmp(a, "--warmup=", 9) == 0) {
        o.warmup = std::atof(a + 9);
      } else if (std::strncmp(a, "--scale=", 8) == 0) {
        o.scale = std::atoi(a + 8);
      } else if (std::strncmp(a, "--items=", 8) == 0) {
        o.items = std::atoi(a + 8);
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        o.seed = std::strtoull(a + 7, nullptr, 10);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", a);
      }
    }
    return o;
  }

  benchfw::LoadParams Load() const {
    benchfw::LoadParams p;
    p.scale = scale;
    p.items = items;
    p.seed = seed;
    return p;
  }

  benchfw::RunConfig Run() const {
    benchfw::RunConfig c;
    c.measure_seconds = measure;
    c.warmup_seconds = warmup;
    c.seed = seed;
    return c;
  }
};

inline void PrintHeader(const char* title, const char* paper_claim) {
  std::printf("==================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==================================================\n");
}

/// One measurement cell with a synchronous vacuum pass before it (starts
/// every cell from reclaimed MVCC chains and fresh index entries, like
/// fresh paper runs; no open snapshots exist between cells, so the pass
/// truncates every chain to its newest version).
/// A misconfigured cell (bad weight override) aborts the figure binary:
/// partial figures are worse than no figures.
inline benchfw::RunResult Cell(engine::Database& db,
                               const benchfw::BenchmarkSuite& suite,
                               const std::vector<benchfw::AgentConfig>& agents,
                               const benchfw::RunConfig& cfg) {
  db.RunVacuum();
  auto result = benchfw::RunCell(db, suite, agents, cfg);
  if (!result.ok()) {
    std::fprintf(stderr, "bench cell misconfigured: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(result);
}

/// Loads the sale/product star schema the vectorized-execution figures
/// share (fig5's interpreter-vs-vectorized comparison and fig10's
/// intra-query scaling ablation): `rows` sales over `products` products,
/// identical distributions, then waits for the replica. One definition so
/// the two figures stay comparable. Returns false (with a message) on
/// setup failure.
inline bool LoadSaleProductReplica(engine::Database& db, engine::Session& s,
                                   int rows, int products, uint64_t seed) {
  auto st = s.Execute("CREATE TABLE sale (id INT PRIMARY KEY, region INT, "
                      "qty INT, amount DOUBLE, pid INT)");
  if (st.ok()) {
    st = s.Execute("CREATE TABLE product (pid INT PRIMARY KEY, "
                   "category INT, cost DOUBLE)");
  }
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.status().ToString().c_str());
    return false;
  }
  Rng rng(seed);
  for (int i = 0; i < products; ++i) {
    auto ins = s.Execute("INSERT INTO product VALUES (?, ?, ?)",
                         {Value::Int(i), Value::Int(i % 12),
                          Value::Double(rng.Uniform(0.5, 20.0))});
    if (!ins.ok()) {
      std::fprintf(stderr, "seed failed: %s\n",
                   ins.status().ToString().c_str());
      return false;
    }
  }
  for (int i = 0; i < rows; ++i) {
    auto ins = s.Execute(
        "INSERT INTO sale VALUES (?, ?, ?, ?, ?)",
        {Value::Int(i), Value::Int(rng.Uniform(int64_t{0}, int64_t{7})),
         Value::Int(rng.Uniform(int64_t{1}, int64_t{20})),
         Value::Double(rng.Uniform(1.0, 500.0)),
         Value::Int(rng.Uniform(int64_t{0}, int64_t{products - 1}))});
    if (!ins.ok()) {
      std::fprintf(stderr, "seed failed: %s\n",
                   ins.status().ToString().c_str());
      return false;
    }
  }
  db.WaitReplicaCaughtUp();
  return true;
}

}  // namespace olxp::bench

#endif  // OLXP_BENCH_BENCH_COMMON_H_
