// Reproduces Figure 9: OLTP, OLAP and OLxP performance of tabenchmark
// (telecom) on the MemSQL-like and TiDB-like engines. Despite being 80%
// read-only, tabench peaks far below the other suites because of the slow
// sub_nbr-only lookup against the composite primary key (full scan) inside
// DeleteCallForwarding/UpdateLocation — the bottleneck §VI-C dissects.
#include "bench/sweep_common.h"

int main(int argc, char** argv) {
  olxp::bench::SweepSpec spec;
  // tabench's bottleneck is the sub_nbr full scan; give it enough
  // subscribers for the slow query to dominate, as in the paper.
  spec.figure = "Figure 9";
  spec.benchmark_name = "tabenchmark";
  spec.min_scale = 6;
  spec.make_suite = [](olxp::benchfw::LoadParams p) {
    return olxp::benchmarks::MakeTabenchmark(p);
  };
  return olxp::bench::RunSweep(spec, argc, argv);
}
