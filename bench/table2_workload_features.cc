// Reproduces Table II: features of the OLxPBench workloads — tables,
// columns, indexes, OLTP transaction counts and read-only shares, query
// counts, hybrid transaction counts and read-only shares. All values are
// introspected from the live schemas and workload registries, so this
// binary doubles as a drift check against the paper's numbers:
//   subenchmark:  9 / 92 / 3 / 5 /  8.0% / 9 / 5 / 60.0%
//   fibenchmark:  3 /  6 / 4 / 6 / 15.0% / 4 / 6 / 20.0%
//   tabenchmark:  4 / 51 / 5 / 7 / 80.0% / 5 / 6 / 40.0%
#include "bench/bench_common.h"

namespace olxp::bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  PrintHeader("Table II: features of the OLxPBench workloads",
              "introspected live; must match the paper's table");

  std::vector<benchfw::BenchmarkSuite> suites;
  suites.push_back(benchmarks::MakeSubenchmark(opts.Load()));
  suites.push_back(benchmarks::MakeFibenchmark(opts.Load()));
  suites.push_back(benchmarks::MakeTabenchmark(opts.Load()));

  std::printf("%-14s %7s %8s %8s %6s %10s %8s %8s %10s\n", "benchmark",
              "tables", "columns", "indexes", "txns", "ro-txns", "queries",
              "hybrids", "ro-hybrid");
  for (benchfw::BenchmarkSuite& suite : suites) {
    engine::Database db(engine::EngineProfile::MemSqlLike());
    auto session = db.CreateSession();
    session->set_charging_enabled(false);
    Status st = suite.create_schema(*session);
    if (!st.ok()) {
      std::fprintf(stderr, "schema failed: %s\n", st.ToString().c_str());
      return 1;
    }
    int columns = 0, indexes = 0;
    for (int id : db.row_store().TableIds()) {
      columns += db.GetSchema(id).num_columns();
      indexes += static_cast<int>(db.GetSchema(id).indexes().size());
    }
    std::printf("%-14s %7d %8d %8d %6d %9.1f%% %8d %8d %9.1f%%\n",
                suite.name.c_str(), db.row_store().num_tables(), columns,
                indexes, static_cast<int>(suite.transactions.size()),
                100 * suite.ReadOnlyShare(benchfw::AgentKind::kOltp),
                static_cast<int>(suite.queries.size()),
                static_cast<int>(suite.hybrids.size()),
                100 * suite.ReadOnlyShare(benchfw::AgentKind::kHybrid));
  }
  return 0;
}

}  // namespace
}  // namespace olxp::bench

int main(int argc, char** argv) { return olxp::bench::Main(argc, argv); }
