// Reproduces Figure 5 (Test Case 2): analytical queries versus real-time
// queries on the TiDB-like engine. Baseline = subenchmark online
// transactions at a fixed rate; group 1 adds analytical queries at 1 qps;
// group 2 replaces the stream with hybrid transactions at the same rate.
// The paper reports ~3x latency from analytical pressure, >9x from
// real-time queries, with stddev exploding 2.21 -> 9.16 -> 38.91.
#include "bench/bench_common.h"

namespace olxp::bench {
namespace {

int Main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  // Low-rate OLAP agents (~1 qps) need a long window to engage
  // statistically (the paper ran 240 s); --measure overrides.
  if (!opts.quick && opts.measure < 6.0) opts.measure = 6.0;
  PrintHeader(
      "Figure 5: analytical vs real-time queries (subenchmark, tidb-like)",
      "latency: baseline -> ~3x (+OLAP) -> >9x (hybrid); stddev explodes");

  benchfw::BenchmarkSuite suite = benchmarks::MakeSubenchmark(opts.Load());
  engine::Database db(engine::EngineProfile::TiDbLike());
  Status st = benchfw::SetUp(db, suite);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const double rate = opts.quick ? 20 : 30;

  benchfw::AgentConfig oltp;
  oltp.kind = benchfw::AgentKind::kOltp;
  oltp.request_rate = rate;
  oltp.threads = 8;

  benchfw::AgentConfig olap;
  olap.kind = benchfw::AgentKind::kOlap;
  olap.request_rate = 1.0;
  olap.threads = 2;

  benchfw::AgentConfig hybrid;
  hybrid.kind = benchfw::AgentKind::kHybrid;
  hybrid.request_rate = rate;
  hybrid.threads = 8;

  auto baseline = Cell(db, suite, {oltp}, opts.Run());
  auto with_olap = Cell(db, suite, {oltp, olap}, opts.Run());
  auto hybrid_run = Cell(db, suite, {hybrid}, opts.Run());

  const auto& b = baseline.Of(benchfw::AgentKind::kOltp);
  const auto& a = with_olap.Of(benchfw::AgentKind::kOltp);
  const auto& h = hybrid_run.Of(benchfw::AgentKind::kHybrid);

  auto report = [&](const char* label, const benchfw::KindStats& k,
                    double secs) {
    std::printf("%-22s mean=%8.2fms sd=%8.2fms p95=%8.2fms tput=%7.1f/s\n",
                label, k.latency.Mean() / 1000.0, k.latency.StdDev() / 1000.0,
                k.latency.P95() / 1000.0, k.Throughput(secs));
  };
  report("baseline (OLTP only)", b, baseline.measure_seconds);
  report("+ analytical 1 qps", a, with_olap.measure_seconds);
  report("hybrid (real-time)", h, hybrid_run.measure_seconds);

  double f_olap = b.latency.Mean() > 0 ? a.latency.Mean() / b.latency.Mean()
                                       : 0;
  double f_hybrid = b.latency.Mean() > 0 ? h.latency.Mean() / b.latency.Mean()
                                         : 0;
  std::printf("\nanalytical interference factor: %.2fx (paper: ~3x)\n",
              f_olap);
  std::printf("real-time interference factor:  %.2fx (paper: >9x)\n",
              f_hybrid);
  std::printf("stddev progression: %.2f -> %.2f -> %.2f ms "
              "(paper: 2.21 -> 9.16 -> 38.91)\n",
              b.latency.StdDev() / 1000.0, a.latency.StdDev() / 1000.0,
              h.latency.StdDev() / 1000.0);
  std::printf("%s\n", benchfw::FigureRow("fig5", 1, "olap_factor",
                                         f_olap).c_str());
  std::printf("%s\n", benchfw::FigureRow("fig5", 2, "hybrid_factor",
                                         f_hybrid).c_str());
  return 0;
}

}  // namespace
}  // namespace olxp::bench

int main(int argc, char** argv) { return olxp::bench::Main(argc, argv); }
