// Reproduces Figure 5 (Test Case 2): analytical queries versus real-time
// queries on the TiDB-like engine. Baseline = subenchmark online
// transactions at a fixed rate; group 1 adds analytical queries at 1 qps;
// group 2 replaces the stream with hybrid transactions at the same rate.
// The paper reports ~3x latency from analytical pressure, >9x from
// real-time queries, with stddev exploding 2.21 -> 9.16 -> 38.91.
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/clock.h"
#include "common/rng.h"
#include "tests/result_strings.h"

namespace olxp::bench {
namespace {

/// Wall-clock of the fastest of `reps` executions (microseconds).
int64_t TimeQuery(engine::Session& s, const std::string& sql, int reps) {
  int64_t best = INT64_MAX;
  for (int r = 0; r < reps; ++r) {
    int64_t t0 = NowMicros();
    auto rs = s.Execute(sql);
    if (!rs.ok()) {
      std::fprintf(stderr, "query failed: %s\n", rs.status().ToString().c_str());
      return -1;
    }
    best = std::min(best, NowMicros() - t0);
  }
  return best;
}

/// Stringified result set for the serial-vs-parallel parity check (same
/// encoding as the test parity suites — tests/result_strings.h). An
/// execution failure clears *ok so it is reported as a failure, never as
/// an (empty) result that could fake a parity verdict either way.
std::vector<std::string> ResultRows(engine::Session& s, const std::string& sql,
                                    bool* ok) {
  auto rs = s.Execute(sql);
  if (!rs.ok()) {
    std::fprintf(stderr, "parity query failed: %s\n",
                 rs.status().ToString().c_str());
    *ok = false;
    return {};
  }
  return Stringify(*rs);
}

/// Interpreter-vs-vectorized wall-clock comparison on the columnar path:
/// the same scan-aggregate and join-aggregate queries over the same
/// replica, served by the row-materializing interpreter, the serial
/// vectorized engine, and the morsel-driven parallel vectorized engine at
/// 8 lanes (hash joins build from the smaller side's raw column vectors;
/// the interpreter joins row-at-a-time through pk point lookups). Serial
/// and parallel result sets are checked for exact equality.
void VectorizedComparison(const BenchOptions& opts,
                          benchfw::BenchJsonReport* report) {
  std::printf("\n--- columnar path: interpreter vs vectorized engine ---\n");
  engine::EngineProfile p = engine::EngineProfile::TiDbLike();
  p.olap_row_fraction = 0.0;
  p.cost_based_routing = false;  // pin both runs to the replica
  engine::Database db(p);
  auto s = db.CreateSession();
  s->set_charging_enabled(false);  // wall-clock, not the simulated model

  const int rows = opts.quick ? 20000 : 120000;
  const int products = opts.quick ? 4000 : 20000;
  if (!LoadSaleProductReplica(db, *s, rows, products, opts.seed)) return;
  db.replicator().Stop();  // quiesce: wall-clock comparison wants an idle box

  struct Query {
    const char* sql;
    bool join;
  };
  const Query queries[] = {
      {"SELECT COUNT(*), SUM(amount), AVG(qty) FROM sale", false},
      {"SELECT SUM(amount) FROM sale WHERE qty > 5 AND region <> 3", false},
      {"SELECT region, COUNT(*), SUM(amount), MAX(amount) FROM sale "
       "GROUP BY region ORDER BY region",
       false},
      {"SELECT COUNT(*), SUM(s.amount * p.cost) FROM sale s "
       "JOIN product p ON s.pid = p.pid",
       true},
      {"SELECT p.category, COUNT(*), SUM(s.amount) FROM sale s "
       "JOIN product p ON s.pid = p.pid WHERE s.qty > 3 "
       "GROUP BY p.category ORDER BY p.category",
       true},
  };
  const int reps = opts.quick ? 3 : 5;
  const int par_lanes = 8;
  std::printf("%d sale rows + %d products on the replica; "
              "best of %d runs per engine\n",
              rows, products, reps);
  double worst_scan = 1e9, worst_join = 1e9, worst_par = 1e9;
  bool parity_ok = true;
  int qn = 0;
  for (const Query& q : queries) {
    db.set_vectorized_execution(false);
    int64_t interp_us = TimeQuery(*s, q.sql, reps);
    db.set_vectorized_execution(true);
    db.set_exec_threads(1);
    int64_t vec_us = TimeQuery(*s, q.sql, reps);
    bool exec_ok = true;
    std::vector<std::string> serial_rows = ResultRows(*s, q.sql, &exec_ok);
    db.set_exec_threads(par_lanes);
    int64_t par_us = TimeQuery(*s, q.sql, reps);
    std::vector<std::string> par_rows = ResultRows(*s, q.sql, &exec_ok);
    db.set_exec_threads(1);
    if (interp_us < 0 || vec_us < 0 || par_us < 0) return;
    if (!exec_ok) {
      parity_ok = false;  // a failed execution is a failure, not "equal"
    } else if (par_rows != serial_rows) {
      parity_ok = false;
      std::fprintf(stderr, "PARITY MISMATCH on: %s\n", q.sql);
    }
    double speedup = vec_us > 0 ? static_cast<double>(interp_us) / vec_us : 0;
    double par_speedup =
        par_us > 0 ? static_cast<double>(vec_us) / par_us : 0;
    (q.join ? worst_join : worst_scan) =
        std::min(q.join ? worst_join : worst_scan, speedup);
    if (!q.join) worst_par = std::min(worst_par, par_speedup);
    std::printf("Q%d %s interpreter=%8.2fms vectorized=%8.2fms "
                "speedup=%5.1fx | parallel(%d)=%8.2fms par_speedup=%4.1fx\n",
                ++qn, q.join ? "join" : "scan", interp_us / 1000.0,
                vec_us / 1000.0, speedup, par_lanes, par_us / 1000.0,
                par_speedup);
  }
  std::printf("parallel parity (serial == %d-lane results): %s\n", par_lanes,
              parity_ok ? "OK" : "MISMATCH");
  std::printf("%s\n", benchfw::FigureRow("fig5", 3, "vectorized_speedup",
                                         worst_scan).c_str());
  std::printf("%s\n", benchfw::FigureRow("fig5", 4, "vectorized_join_speedup",
                                         worst_join).c_str());
  std::printf("%s\n", benchfw::FigureRow("fig5", 5, "parallel_scan_speedup",
                                         worst_par).c_str());
  report->AddMetric("vectorized", "vectorized_speedup", worst_scan);
  report->AddMetric("vectorized", "vectorized_join_speedup", worst_join);
  report->AddMetric("vectorized", "parallel_scan_speedup", worst_par);
  report->AddMetric("vectorized", "parallel_parity_ok", parity_ok ? 1 : 0);
}

int Main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  // Low-rate OLAP agents (~1 qps) need a long window to engage
  // statistically (the paper ran 240 s); --measure overrides.
  if (!opts.quick && opts.measure < 6.0) opts.measure = 6.0;
  PrintHeader(
      "Figure 5: analytical vs real-time queries (subenchmark, tidb-like)",
      "latency: baseline -> ~3x (+OLAP) -> >9x (hybrid); stddev explodes");

  benchfw::BenchJsonReport jreport("fig5");
  jreport.AddConfig("profile", "tidb-like");
  jreport.AddConfig("quick", opts.quick);
  jreport.AddConfig("measure_seconds", opts.measure);
  jreport.AddConfig("scale", static_cast<double>(opts.scale));
  jreport.AddConfig("items", static_cast<double>(opts.items));
  jreport.AddConfig("seed", static_cast<double>(opts.seed));

  benchfw::BenchmarkSuite suite = benchmarks::MakeSubenchmark(opts.Load());
  engine::Database db(engine::EngineProfile::TiDbLike());
  Status st = benchfw::SetUp(db, suite);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const double rate = opts.quick ? 20 : 30;

  benchfw::AgentConfig oltp;
  oltp.kind = benchfw::AgentKind::kOltp;
  oltp.request_rate = rate;
  oltp.threads = 8;

  benchfw::AgentConfig olap;
  olap.kind = benchfw::AgentKind::kOlap;
  olap.request_rate = 1.0;
  olap.threads = 2;

  benchfw::AgentConfig hybrid;
  hybrid.kind = benchfw::AgentKind::kHybrid;
  hybrid.request_rate = rate;
  hybrid.threads = 8;

  auto baseline = Cell(db, suite, {oltp}, opts.Run());
  auto with_olap = Cell(db, suite, {oltp, olap}, opts.Run());
  auto hybrid_run = Cell(db, suite, {hybrid}, opts.Run());

  const auto& b = baseline.Of(benchfw::AgentKind::kOltp);
  const auto& a = with_olap.Of(benchfw::AgentKind::kOltp);
  const auto& h = hybrid_run.Of(benchfw::AgentKind::kHybrid);

  auto report = [&](const char* label, const benchfw::KindStats& k,
                    double secs) {
    std::printf("%-22s mean=%8.2fms sd=%8.2fms p95=%8.2fms tput=%7.1f/s\n",
                label, k.latency.Mean() / 1000.0, k.latency.StdDev() / 1000.0,
                k.latency.P95() / 1000.0, k.Throughput(secs));
  };
  report("baseline (OLTP only)", b, baseline.measure_seconds);
  report("+ analytical 1 qps", a, with_olap.measure_seconds);
  report("hybrid (real-time)", h, hybrid_run.measure_seconds);

  double f_olap = b.latency.Mean() > 0 ? a.latency.Mean() / b.latency.Mean()
                                       : 0;
  double f_hybrid = b.latency.Mean() > 0 ? h.latency.Mean() / b.latency.Mean()
                                         : 0;
  std::printf("\nanalytical interference factor: %.2fx (paper: ~3x)\n",
              f_olap);
  std::printf("real-time interference factor:  %.2fx (paper: >9x)\n",
              f_hybrid);
  std::printf("stddev progression: %.2f -> %.2f -> %.2f ms "
              "(paper: 2.21 -> 9.16 -> 38.91)\n",
              b.latency.StdDev() / 1000.0, a.latency.StdDev() / 1000.0,
              h.latency.StdDev() / 1000.0);
  std::printf("%s\n", benchfw::FigureRow("fig5", 1, "olap_factor",
                                         f_olap).c_str());
  std::printf("%s\n", benchfw::FigureRow("fig5", 2, "hybrid_factor",
                                         f_hybrid).c_str());
  jreport.AddCell("baseline_oltp_only", baseline);
  jreport.AddCell("plus_analytical_1qps", with_olap);
  jreport.AddCell("hybrid_realtime", hybrid_run);
  jreport.AddMetric("interference", "olap_factor", f_olap);
  jreport.AddMetric("interference", "hybrid_factor", f_hybrid);

  VectorizedComparison(opts, &jreport);
  jreport.Write();
  return 0;
}

}  // namespace
}  // namespace olxp::bench

int main(int argc, char** argv) { return olxp::bench::Main(argc, argv); }
